// Property test for the hierarchical timer wheel (sim/timer_wheel.h),
// exercised both directly — a driver that replicates EventQueue's
// drain-and-merge loop against a sorted-vector reference model — and through
// EventQueue with delays spanning every wheel level plus the heap overflow
// band. Reuses the harness style of event_queue_property_test: random
// schedule/cancel/reschedule/advance interleavings over 10 seeds; any
// divergence in fire order or liveness is a determinism bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/event_queue.h"
#include "sim/timer_wheel.h"

namespace dcqcn {
namespace {

// Reference model shared by both tests: append-only vector of scheduled
// events, popped by linear scan for the smallest live (time, seq).
struct RefEvent {
  Time at = 0;
  uint64_t seq = 0;
  bool live = false;
};

class ReferenceModel {
 public:
  void Schedule(Time at, uint64_t seq) {
    events_.push_back(RefEvent{at, seq, true});
  }

  bool Cancel(uint64_t seq) {
    for (RefEvent& e : events_) {
      if (e.seq != seq) continue;
      const bool was_live = e.live;
      e.live = false;
      return was_live;
    }
    return false;
  }

  // Pops the earliest live (at, seq), or nullptr when drained.
  const RefEvent* PopNext() {
    RefEvent* best = nullptr;
    for (RefEvent& e : events_) {
      if (!e.live) continue;
      if (best == nullptr || e.at < best->at ||
          (e.at == best->at && e.seq < best->seq)) {
        best = &e;
      }
    }
    if (best != nullptr) best->live = false;
    return best;
  }

  size_t LiveCount() const {
    size_t n = 0;
    for (const RefEvent& e : events_) n += e.live ? 1 : 0;
    return n;
  }

 private:
  std::vector<RefEvent> events_;
};

// Driver owning a bare TimerWheel the way EventQueue does: a slot table
// mapping wheel slots to armed sequence numbers (for lazy ready-tombstones),
// plus the drain-until-quiescent merge loop from EventQueue::PrepareTop —
// here wheel-only, so the "known candidate" is just the ready front.
class WheelDriver {
 public:
  static constexpr uint32_t kSlots = 512;

  WheelDriver() {
    wheel_.EnsureSlots(kSlots);
    armed_.assign(kSlots, 0);
    for (uint32_t s = kSlots; s-- > 0;) free_.push_back(s);
  }

  bool HasFreeSlot() const { return !free_.empty(); }
  size_t Live() const { return live_; }
  TimerWheel& wheel() { return wheel_; }

  // Returns the armed sequence number (the test's handle).
  uint64_t Schedule(Time at) {
    const uint32_t slot = free_.back();
    free_.pop_back();
    const uint64_t seq = next_seq_++;
    armed_[slot] = seq;
    slot_of_[seq] = slot;
    wheel_.Insert(slot, at, /*key=*/0, seq);
    ++live_;
    return seq;
  }

  bool Cancel(uint64_t seq) {
    auto it = slot_of_.find(seq);
    if (it == slot_of_.end()) return false;
    const uint32_t slot = it->second;
    if (armed_[slot] != seq) return false;
    wheel_.OnCancel(slot);
    Release(slot);
    return true;
  }

  // Pops the earliest live entry, draining chained buckets first exactly
  // like EventQueue::PrepareTop. Returns false when the wheel is empty.
  bool PopNext(Time* at, uint64_t* seq) {
    for (;;) {
      wheel_.SkipDeadReady(
          [this](const TimerWheel::Entry& e) { return armed_[e.slot] != e.seq; });
      if (wheel_.HasChained()) {
        const Time known = wheel_.ReadyEmpty()
                               ? std::numeric_limits<Time>::max()
                               : wheel_.ReadyFront().at;
        if (wheel_.NextChainedStart() <= known) {
          wheel_.DrainOneStep();
          continue;
        }
      }
      if (wheel_.ReadyEmpty()) return false;
      const TimerWheel::Entry e = wheel_.PopReady();
      *at = e.at;
      *seq = e.seq;
      Release(e.slot);
      return true;
    }
  }

 private:
  void Release(uint32_t slot) {
    armed_[slot] = 0;
    free_.push_back(slot);
    --live_;
  }

  TimerWheel wheel_;
  std::vector<uint64_t> armed_;  // slot -> armed seq (0 = free)
  std::vector<uint32_t> free_;
  std::unordered_map<uint64_t, uint32_t> slot_of_;
  uint64_t next_seq_ = 1;
  size_t live_ = 0;
};

// Random delay spanning the wheel's bands: ready (<= 1 tick), L0 (~1 us),
// L1 (~268 us), L2 (~68 ms) — clamped into the horizon via Accepts.
Time RandomWheelDelay(Rng& rng, const TimerWheel& wheel, Time now) {
  const int band = static_cast<int>(rng.UniformInt(0, 3));
  Time delay = 0;
  switch (band) {
    case 0: delay = rng.UniformInt(0, (1 << 12) - 1); break;          // ready/L0 edge
    case 1: delay = rng.UniformInt(0, (1 << 20) - 1); break;          // L0/L1
    case 2: delay = rng.UniformInt(0, (1 << 28) - 1); break;          // L1/L2
    default: delay = rng.UniformInt(0, (int64_t{1} << 36) - 1); break;  // deep L2
  }
  Time at = now + delay;
  while (!wheel.Accepts(at)) at = now + (at - now) / 2;
  return at;
}

TEST(TimerWheelProperty, RandomChurnMatchesReferenceModel) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    WheelDriver driver;
    ReferenceModel ref;
    Rng rng(seed);

    Time now = 0;
    std::vector<uint64_t> issued;  // every handle ever issued

    const int kOps = 3000;
    for (int op = 0; op < kOps; ++op) {
      const int64_t roll = rng.UniformInt(0, 99);
      if (roll < 55 && driver.HasFreeSlot()) {
        const Time at = RandomWheelDelay(rng, driver.wheel(), now);
        const uint64_t seq = driver.Schedule(at);
        ref.Schedule(at, seq);
        issued.push_back(seq);
      } else if (roll < 70 && !issued.empty()) {
        // Cancel a random handle — possibly live, fired, or re-cancelled.
        const auto i = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(issued.size()) - 1));
        EXPECT_EQ(driver.Cancel(issued[i]), ref.Cancel(issued[i]));
      } else if (roll < 80 && !issued.empty() && driver.HasFreeSlot()) {
        // Reschedule: cancel + schedule anew (the NIC timer re-arm idiom).
        const auto i = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(issued.size()) - 1));
        EXPECT_EQ(driver.Cancel(issued[i]), ref.Cancel(issued[i]));
        const Time at = RandomWheelDelay(rng, driver.wheel(), now);
        const uint64_t seq = driver.Schedule(at);
        ref.Schedule(at, seq);
        issued.push_back(seq);
      } else {
        // Advance: pop a burst, checking (time, seq) against the model.
        const int64_t burst = rng.UniformInt(1, 6);
        for (int64_t b = 0; b < burst; ++b) {
          Time at = 0;
          uint64_t seq = 0;
          const bool popped = driver.PopNext(&at, &seq);
          const RefEvent* e = ref.PopNext();
          ASSERT_EQ(popped, e != nullptr);
          if (e == nullptr) break;
          EXPECT_EQ(at, e->at);
          EXPECT_EQ(seq, e->seq);
          EXPECT_GE(at, now);
          now = at;
        }
      }
      ASSERT_EQ(driver.Live(), ref.LiveCount());
    }

    // Drain everything that's left, still in exact (time, seq) order.
    for (;;) {
      Time at = 0;
      uint64_t seq = 0;
      const bool popped = driver.PopNext(&at, &seq);
      const RefEvent* e = ref.PopNext();
      ASSERT_EQ(popped, e != nullptr);
      if (e == nullptr) break;
      EXPECT_EQ(at, e->at);
      EXPECT_EQ(seq, e->seq);
    }
    EXPECT_EQ(driver.Live(), 0u);
  }
}

// The same churn through EventQueue, now including delays beyond the wheel
// horizon (heap overflow band) — the heap/wheel merge must preserve global
// (time, seq) FIFO order across the routing boundary.
TEST(TimerWheelProperty, EventQueueChurnAcrossAllBandsMatchesReference) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EventQueue eq;
    ReferenceModel ref;
    Rng rng(seed);

    struct Issued {
      EventHandle handle;
      uint64_t ref_seq;
    };
    std::vector<Issued> issued;
    std::vector<uint64_t> fired;     // ref seqs in actual fire order
    std::vector<uint64_t> expected;  // ref seqs in reference fire order
    uint64_t next_ref_seq = 1;

    auto random_delay = [&rng]() -> Time {
      switch (static_cast<int>(rng.UniformInt(0, 4))) {
        case 0: return rng.UniformInt(0, (1 << 12) - 1);            // sub-tick
        case 1: return rng.UniformInt(0, (1 << 20) - 1);            // L0/L1
        case 2: return rng.UniformInt(0, (1 << 28) - 1);            // L1/L2
        case 3: return rng.UniformInt(0, (int64_t{1} << 36) - 1);   // deep L2
        default:
          // Beyond the ~68 ms horizon: stays in the heap forever.
          return Milliseconds(69) + rng.UniformInt(0, Milliseconds(500));
      }
    };

    const int kOps = 2500;
    for (int op = 0; op < kOps; ++op) {
      const int64_t roll = rng.UniformInt(0, 99);
      if (roll < 55) {
        const Time at = eq.Now() + random_delay();
        const uint64_t ref_seq = next_ref_seq++;
        Issued s;
        s.handle = eq.ScheduleAt(at, [&fired, ref_seq] {
          fired.push_back(ref_seq);
        });
        s.ref_seq = ref_seq;
        ref.Schedule(at, ref_seq);
        issued.push_back(s);
      } else if (roll < 75 && !issued.empty()) {
        const auto i = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(issued.size()) - 1));
        EXPECT_EQ(eq.Cancel(issued[i].handle), ref.Cancel(issued[i].ref_seq));
      } else {
        const int64_t burst = rng.UniformInt(1, 5);
        for (int64_t b = 0; b < burst; ++b) {
          const RefEvent* e = ref.PopNext();
          const bool ran = eq.RunOne();
          ASSERT_EQ(ran, e != nullptr);
          if (e == nullptr) break;
          expected.push_back(e->seq);
          EXPECT_EQ(eq.Now(), e->at);
        }
      }
      ASSERT_EQ(eq.PendingEvents(), ref.LiveCount());
    }

    while (const RefEvent* e = ref.PopNext()) expected.push_back(e->seq);
    eq.RunAll();
    EXPECT_TRUE(eq.Empty());
    EXPECT_EQ(fired, expected);
  }
}

}  // namespace
}  // namespace dcqcn
