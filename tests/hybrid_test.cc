// Conformance suite for the hybrid packet/flow fast-forward engine
// (src/hybrid/): the allocator's max-min fixed point, the --hybrid spec
// grammar, and the engine's accuracy contract against the pure packet
// engine — exact FCT equality on an uncongested fabric with zero pacing
// jitter, bounded FCT error under load, byte-identical runner output across
// --jobs, composition with every registered rate-based CC policy, and
// packet-mode fallback around faults and window-based transports.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fault/fault_plan.h"
#include "hybrid/allocator.h"
#include "hybrid/engine.h"
#include "net/network.h"
#include "net/topology.h"
#include "runner/runner.h"
#include "runner/serialize.h"

namespace dcqcn {
namespace {

using hybrid::AllocDemand;
using hybrid::AllocResult;
using hybrid::HybridConfig;
using hybrid::HybridEngine;
using hybrid::MaxMinAllocate;
using hybrid::ParseHybridSpec;

// ---------- allocator ----------

TEST(MaxMinAllocator, SingleFlowTakesMinOfCapAndLink) {
  const std::vector<Rate> links = {Gbps(40)};
  AllocResult r = MaxMinAllocate({{Gbps(25), {0}}}, links);
  ASSERT_EQ(r.rate.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rate[0], Gbps(25));

  r = MaxMinAllocate({{Gbps(100), {0}}}, links);
  EXPECT_DOUBLE_EQ(r.rate[0], Gbps(40));
}

TEST(MaxMinAllocator, EqualSplitOnSharedBottleneck) {
  const std::vector<Rate> links = {Gbps(40)};
  const AllocResult r =
      MaxMinAllocate({{Gbps(40), {0}}, {Gbps(40), {0}}}, links);
  ASSERT_EQ(r.rate.size(), 2u);
  EXPECT_NEAR(r.rate[0], Gbps(20), 1.0);
  EXPECT_NEAR(r.rate[1], Gbps(20), 1.0);
}

TEST(MaxMinAllocator, CapFreezeRedistributesHeadroom) {
  // Flow 0 freezes at its 10 Gbps cap; flow 1 absorbs the rest of the link.
  const std::vector<Rate> links = {Gbps(40)};
  const AllocResult r =
      MaxMinAllocate({{Gbps(10), {0}}, {Gbps(40), {0}}}, links);
  EXPECT_NEAR(r.rate[0], Gbps(10), 1.0);
  EXPECT_NEAR(r.rate[1], Gbps(30), 1.0);
}

TEST(MaxMinAllocator, ClassicTwoBottleneckMaxMin) {
  // Links: A (10), B (40). Flow 0 crosses A only, flow 1 crosses A and B,
  // flow 2 crosses B only. Max-min: flows 0/1 split A at 5 each; flow 2
  // takes B's remainder, 35.
  const std::vector<Rate> links = {Gbps(10), Gbps(40)};
  const AllocResult r = MaxMinAllocate(
      {{Gbps(40), {0}}, {Gbps(40), {0, 1}}, {Gbps(40), {1}}}, links);
  EXPECT_NEAR(r.rate[0], Gbps(5), 1.0);
  EXPECT_NEAR(r.rate[1], Gbps(5), 1.0);
  EXPECT_NEAR(r.rate[2], Gbps(35), 1.0);
}

TEST(MaxMinAllocator, EmptyDemandsYieldEmptyResult) {
  const AllocResult r = MaxMinAllocate({}, {Gbps(40)});
  EXPECT_TRUE(r.rate.empty());
}

// ---------- spec grammar ----------

TEST(HybridSpec, EmptyMeansDefaults) {
  HybridConfig cfg;
  ASSERT_TRUE(ParseHybridSpec("", &cfg));
  const HybridConfig def;
  EXPECT_EQ(cfg.check_interval, def.check_interval);
  EXPECT_EQ(cfg.eps, def.eps);
  EXPECT_EQ(cfg.release_completed, def.release_completed);
}

TEST(HybridSpec, ParsesEveryKey) {
  HybridConfig cfg;
  ASSERT_TRUE(ParseHybridSpec(
      "check=50,eps=0.05,queue_frac=0.5,max_epoch=500,guard=10,release=1",
      &cfg));
  EXPECT_EQ(cfg.check_interval, Microseconds(50));
  EXPECT_DOUBLE_EQ(cfg.eps, 0.05);
  EXPECT_DOUBLE_EQ(cfg.queue_frac, 0.5);
  EXPECT_EQ(cfg.max_epoch, Microseconds(500));
  EXPECT_EQ(cfg.fault_guard, Microseconds(10));
  EXPECT_TRUE(cfg.release_completed);
}

TEST(HybridSpec, RejectsUnknownKeysAndMalformedValues) {
  HybridConfig cfg;
  EXPECT_FALSE(ParseHybridSpec("bogus=1", &cfg));
  EXPECT_FALSE(ParseHybridSpec("eps=abc", &cfg));
  EXPECT_FALSE(ParseHybridSpec("check=", &cfg));
  EXPECT_FALSE(ParseHybridSpec("check", &cfg));
}

// ---------- engine vs packet engine ----------

// Node-id layout produced by BuildClos: ToRs, leaves, spines, then hosts
// ToR-major (shard_test pins this for the partitioner).
int HostId(const ClosShape& s, int tor, int h) {
  return s.num_tors() + s.num_leaves() + s.spines + tor * s.hosts_per_tor + h;
}

struct DisjointRun {
  std::map<int, Time> finish;  // flow id -> sender-side completion time
  uint64_t events = 0;
  hybrid::HybridStats stats;
};

// One bounded flow inside each ToR of the paper testbed (host 0 -> host 1,
// two dedicated host links per flow, no shared fabric links), with pacing
// jitter disabled — the regime where the analytic model's integer
// arithmetic must reproduce the packet engine's FCTs exactly.
DisjointRun RunDisjointPairs(bool use_hybrid) {
  const ClosShape shape{};  // 4 ToRs / 20 hosts
  Network net(/*seed=*/11);
  TopologyOptions topt;
  topt.nic_config.pacing_jitter = 0.0;
  const ClosTopology topo = BuildClos(net, shape, topt);
  HybridConfig cfg;
  cfg.check_interval = Microseconds(5);
  std::optional<HybridEngine> hyb;
  if (use_hybrid) hyb.emplace(&net, cfg);

  std::vector<RdmaNic*> senders;
  for (int tor = 0; tor < shape.num_tors(); ++tor) {
    FlowSpec fs;
    fs.flow_id = net.NextFlowId();
    fs.src_host = HostId(shape, tor, 0);
    fs.dst_host = HostId(shape, tor, 1);
    fs.size_bytes = 256 * kKB;
    net.StartFlow(fs);
    senders.push_back(topo.hosts_by_tor[static_cast<size_t>(tor)][0]);
  }

  DisjointRun out;
  out.events = use_hybrid ? hyb->Run(Milliseconds(1)) : net.Run(Milliseconds(1));
  for (const RdmaNic* nic : senders) {
    for (const FlowRecord& rec : nic->completed_flows()) {
      out.finish[rec.spec.flow_id] = rec.finish_time;
    }
  }
  if (use_hybrid) out.stats = hyb->stats();
  return out;
}

TEST(HybridEngine, ExactFctEqualityOnUncongestedFabric) {
  const DisjointRun packet = RunDisjointPairs(/*use_hybrid=*/false);
  const DisjointRun hybrid = RunDisjointPairs(/*use_hybrid=*/true);

  ASSERT_EQ(packet.finish.size(), 4u);
  ASSERT_EQ(hybrid.finish.size(), 4u);
  for (const auto& [flow_id, t] : packet.finish) {
    ASSERT_TRUE(hybrid.finish.count(flow_id));
    // Picosecond-exact: the analytic pacing/serialization arithmetic must
    // match SenderQp and Link::Transmit bit for bit.
    EXPECT_EQ(hybrid.finish.at(flow_id), t) << "flow " << flow_id;
  }
  // The fast path must actually engage — otherwise this test is vacuous.
  EXPECT_GE(hybrid.stats.epochs, 1);
  EXPECT_GT(hybrid.stats.ff_packets, 0);
  EXPECT_GT(hybrid.stats.ff_completions, 0);
  EXPECT_LT(hybrid.events, packet.events);
}

// Runs the ScaleTrial harness (one mid-size Clos case, open-loop Poisson)
// with the given hybrid spec; returns the serialized results.
std::vector<runner::TrialResult> RunPoissonCase(const std::string& hybrid,
                                                const std::string& cc,
                                                double load_gbps,
                                                const FaultPlan* faults,
                                                int jobs) {
  bench::ScaleCase c;
  c.name = "hybrid_conformance";
  c.shape = ClosShape{.pods = 4, .tors_per_pod = 2, .leaves_per_pod = 2,
                      .spines = 4, .hosts_per_tor = 8};  // 64 hosts
  c.duration = Milliseconds(2);
  bench::ScaleTrialOptions topt;
  topt.cc = runner::ResolveCc(cc, TransportMode::kRdmaDcqcn);
  char wl[64];
  std::snprintf(wl, sizeof(wl), "poisson:load_gbps=%.6g", load_gbps);
  topt.workload = wl;
  topt.workload_size_scale = 0.3;
  std::vector<runner::TrialSpec> matrix = {bench::ScaleTrial(c, topt)};
  if (faults != nullptr) matrix[0].faults = *faults;
  runner::RunnerOptions opt;
  opt.jobs = jobs;
  opt.base_seed = 23;
  opt.hybrid = hybrid;
  return runner::RunTrials(matrix, opt);
}

TEST(HybridEngine, MedianFctWithinFivePercentUnderLoad) {
  // ~5% offered load: enough concurrency that flows really collide (the
  // hybrid run must mix packet-mode congestion with fast-forwarded epochs).
  const auto packet = RunPoissonCase("", "", 128.0, nullptr, 1);
  const auto hybrid = RunPoissonCase("on", "", 128.0, nullptr, 1);
  ASSERT_EQ(packet.size(), 1u);
  ASSERT_EQ(hybrid.size(), 1u);

  // Same arrival process on both engines.
  EXPECT_EQ(packet[0].counters.at("wl_started"),
            hybrid[0].counters.at("wl_started"));
  // The fast path engaged at least once.
  EXPECT_GE(hybrid[0].counters.at("hybrid_epochs"), 1);

  const Summary& pf = packet[0].summaries.at("wl_fct_us");
  const Summary& hf = hybrid[0].summaries.at("wl_fct_us");
  ASSERT_GT(pf.count, 50u);
  ASSERT_GT(hf.count, 50u);
  EXPECT_NEAR(hf.median, pf.median, 0.05 * pf.median);
  EXPECT_NEAR(hf.mean, pf.mean, 0.05 * pf.mean);
}

TEST(HybridEngine, RunnerOutputByteIdenticalAcrossJobs) {
  bench::ScaleTrialOptions topt;
  topt.workload = "poisson:load_gbps=50";
  topt.workload_size_scale = 0.3;
  topt.fct_reservoir = 128;        // exercise the capped-Cdf path too
  topt.retain_flow_records = false;
  std::vector<runner::TrialSpec> matrix;
  for (const bench::ScaleCase& c : bench::ScaleCases(/*smoke=*/true)) {
    matrix.push_back(bench::ScaleTrial(c, topt));
  }
  runner::RunnerOptions opt;
  opt.base_seed = 5;
  opt.hybrid = "release=1,check=5";
  opt.jobs = 1;
  const std::string serial =
      runner::ResultsToJson(runner::RunTrials(matrix, opt));
  opt.jobs = 8;
  const std::string parallel =
      runner::ResultsToJson(runner::RunTrials(matrix, opt));
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("hybrid_epochs"), std::string::npos);
}

TEST(HybridEngine, ComposesWithEveryRateBasedPolicy) {
  for (const std::string cc : {"dcqcn", "timely"}) {
    const auto packet = RunPoissonCase("", cc, 32.0, nullptr, 1);
    const auto hybrid = RunPoissonCase("on", cc, 32.0, nullptr, 1);
    // Identical arrival stream; completions may shift only for flows still
    // in flight at the window edge.
    EXPECT_EQ(packet[0].counters.at("wl_started"),
              hybrid[0].counters.at("wl_started"))
        << cc;
    const double pc = static_cast<double>(packet[0].counters.at("wl_completed"));
    const double hc = static_cast<double>(hybrid[0].counters.at("wl_completed"));
    EXPECT_NEAR(hc, pc, std::max(2.0, 0.02 * pc)) << cc;
    EXPECT_GE(hybrid[0].counters.at("hybrid_epochs"), 1) << cc;
  }
}

TEST(HybridEngine, WindowBasedTransportNeverEntersFlowMode) {
  // DCTCP is window-based: the gate must reject every probe, and with zero
  // epochs the hybrid run must reproduce the packet run's numbers exactly.
  const auto packet = RunPoissonCase("", "dctcp", 32.0, nullptr, 1);
  const auto hybrid = RunPoissonCase("on", "dctcp", 32.0, nullptr, 1);
  EXPECT_EQ(hybrid[0].counters.at("hybrid_epochs"), 0);
  for (const char* k : {"wl_started", "wl_completed", "events",
                        "delivered_bytes", "cnps", "drops"}) {
    EXPECT_EQ(packet[0].counters.at(k), hybrid[0].counters.at(k)) << k;
  }
}

TEST(HybridEngine, FaultPlansForcePacketModeAndMatchInjection) {
  // A mid-run link flap plus a lossy window. The controller must never
  // fast-forward across a boundary (fault_guard), and the injection itself
  // — a packet-level mechanism — must execute identically.
  FaultPlan plan;
  const ClosShape s{.pods = 4, .tors_per_pod = 2, .leaves_per_pod = 2,
                    .spines = 4, .hosts_per_tor = 8};
  const int tor0 = 0;
  const int leaf0 = s.num_tors();
  plan.Add(LinkFlap(tor0, leaf0, Microseconds(300), Microseconds(200)));
  plan.Add(PacketLoss(tor0, leaf0, Microseconds(900), Microseconds(300),
                      0.02));
  const auto packet = RunPoissonCase("", "", 64.0, &plan, 1);
  const auto hybrid = RunPoissonCase("on", "", 64.0, &plan, 1);
  EXPECT_EQ(packet[0].counters.at("faults_started"),
            hybrid[0].counters.at("faults_started"));
  EXPECT_EQ(packet[0].counters.at("faults_healed"),
            hybrid[0].counters.at("faults_healed"));
  EXPECT_EQ(packet[0].counters.at("wl_started"),
            hybrid[0].counters.at("wl_started"));
  const double pc = static_cast<double>(packet[0].counters.at("wl_completed"));
  const double hc = static_cast<double>(hybrid[0].counters.at("wl_completed"));
  EXPECT_NEAR(hc, pc, std::max(2.0, 0.02 * pc));
}

}  // namespace
}  // namespace dcqcn
