#include "stats/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcqcn {
namespace {

TEST(Percentile, OrderStatistics) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.9), 9.0);
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 1.0), 7.0);
}

TEST(Summary, ComputesAllFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p10, 10.9, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.count, 100u);
}

TEST(Summary, EmptyIsZero) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Jain, PerfectFairness) {
  EXPECT_DOUBLE_EQ(JainIndex({10, 10, 10, 10}), 1.0);
}

TEST(Jain, TotalUnfairness) {
  // One flow hogging everything among n flows gives 1/n.
  EXPECT_NEAR(JainIndex({40, 0, 0, 0}), 0.25, 1e-12);
}

TEST(Jain, IntermediateOrdering) {
  const double fair = JainIndex({10, 10, 10, 10});
  const double skew = JainIndex({20, 10, 5, 5});
  const double worse = JainIndex({37, 1, 1, 1});
  EXPECT_GT(fair, skew);
  EXPECT_GT(skew, worse);
}

TEST(Cdf, QuantilesAndFractions) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.Add(i);
  EXPECT_DOUBLE_EQ(c.Quantile(0.0), 1);
  EXPECT_DOUBLE_EQ(c.Quantile(1.0), 10);
  EXPECT_DOUBLE_EQ(c.FractionBelow(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.FractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.FractionBelow(100), 1.0);
}

TEST(Cdf, AddAfterQuantileStillSorted) {
  Cdf c;
  c.Add(3);
  c.Add(1);
  EXPECT_DOUBLE_EQ(c.Quantile(1.0), 3);
  c.Add(2);
  EXPECT_DOUBLE_EQ(c.Quantile(0.5), 2);
}

TEST(Cdf, PointsAreMonotone) {
  Cdf c;
  for (int i = 0; i < 100; ++i) c.Add((i * 37) % 101);
  auto pts = c.Points(11);
  ASSERT_EQ(pts.size(), 11u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].second, pts[i - 1].second);
    EXPECT_GT(pts[i].first, pts[i - 1].first);
  }
}

TEST(Cdf, UncappedStaysByteIdenticalToHistoricalContainer) {
  // SetCap(0) / never calling SetCap must change nothing: every sample
  // retained in insertion order, size() == reservoir_size().
  Cdf plain, capped_at_zero;
  capped_at_zero.SetCap(0);
  for (int i = 0; i < 500; ++i) {
    const double v = (i * 37) % 101;
    plain.Add(v);
    capped_at_zero.Add(v);
  }
  EXPECT_EQ(plain.size(), 500u);
  EXPECT_EQ(plain.reservoir_size(), 500u);
  EXPECT_EQ(plain.Values(), capped_at_zero.Values());
}

TEST(Cdf, CappedReservoirBoundsMemoryAndKeepsTrueCount) {
  Cdf c;
  c.SetCap(64);
  for (int i = 0; i < 10000; ++i) c.Add(static_cast<double>(i));
  EXPECT_EQ(c.size(), 10000u);        // true Add count
  EXPECT_EQ(c.reservoir_size(), 64u); // retained samples bounded by the cap
  // Quantiles come from the reservoir and stay inside the sample range.
  EXPECT_GE(c.Quantile(0.0), 0.0);
  EXPECT_LE(c.Quantile(1.0), 9999.0);
  // Reservoir selection is a pure function of the sample index — two
  // identically fed capped CDFs agree exactly (jobs/shard invariance).
  Cdf d;
  d.SetCap(64);
  for (int i = 0; i < 10000; ++i) d.Add(static_cast<double>(i));
  EXPECT_EQ(c.Values(), d.Values());
}

TEST(Cdf, CapLargerThanSampleCountIsExact) {
  Cdf c;
  c.SetCap(1000);
  for (int i = 0; i < 100; ++i) c.Add(static_cast<double>(99 - i));
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(c.reservoir_size(), 100u);
  EXPECT_DOUBLE_EQ(c.Quantile(1.0), 99.0);
}

TEST(TimeSeries, MeanAndMaxOverWindow) {
  TimeSeries ts;
  ts.Add(Milliseconds(1), 10);
  ts.Add(Milliseconds(2), 20);
  ts.Add(Milliseconds(3), 30);
  EXPECT_DOUBLE_EQ(ts.MeanOver(Milliseconds(1), Milliseconds(3)), 15.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(0, Milliseconds(10)), 20.0);
  EXPECT_DOUBLE_EQ(ts.MaxOver(0, Milliseconds(10)), 30.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(Milliseconds(5), Milliseconds(6)), 0.0);
}

TEST(TailStats, MomentsOverSettledTail) {
  TimeSeries ts;
  ts.Add(Milliseconds(1), 100);  // before the window, ignored
  ts.Add(Milliseconds(10), 10);
  ts.Add(Milliseconds(11), 20);
  ts.Add(Milliseconds(12), 30);
  const TailStats s = TailOver(ts, Milliseconds(10));
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
  EXPECT_NEAR(s.stddev, std::sqrt(200.0 / 3.0), 1e-12);
}

TEST(TailStats, EmptyWindowIsZeroedNotNaN) {
  // The fig12 bench regression: a measurement window past the last sample
  // must yield zeros, not a 0/0 NaN mean.
  TimeSeries ts;
  ts.Add(Milliseconds(1), 42);
  const TailStats past = TailOver(ts, Milliseconds(50));
  EXPECT_EQ(past.count, 0u);
  EXPECT_EQ(past.mean, 0.0);
  EXPECT_EQ(past.stddev, 0.0);
  EXPECT_EQ(past.min, 0.0);
  EXPECT_EQ(past.max, 0.0);

  const TailStats empty = TailOver(TimeSeries{}, 0);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0.0);
}

TEST(TailStats, NegativeValuesKeepMinMaxHonest) {
  // min/max initialize from the first in-window sample, not from sentinels.
  TimeSeries ts;
  ts.Add(Milliseconds(10), -5);
  ts.Add(Milliseconds(11), -1);
  const TailStats s = TailOver(ts, 0);
  EXPECT_DOUBLE_EQ(s.min, -5.0);
  EXPECT_DOUBLE_EQ(s.max, -1.0);
}

}  // namespace
}  // namespace dcqcn
