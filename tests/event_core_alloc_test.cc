// Allocation-counting hook for the allocation-free event core (PR 4
// acceptance criterion): after warm-up, the schedule→fire path, the pooled
// packet rings, and a whole steady-state incast simulation must perform
// ZERO heap allocations. The hook replaces global operator new/delete in
// this test binary with counting wrappers; the tests snapshot the counter
// around a measured phase and assert it never moved. Everything under test
// is deterministic (seeded), so these are exact assertions, not thresholds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/network.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "sim/queue_pool.h"
#include "sim/ring_buffer.h"

namespace {

std::atomic<int64_t> g_allocations{0};

void* CountedAlloc(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

int64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dcqcn {
namespace {

TEST(EventCoreAlloc, ScheduleFireCycleIsAllocationFree) {
  EventQueue eq;
  int64_t sink = 0;
  // Warm-up: reach the steady-state slot/heap high-water mark.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 256; ++i) {
      eq.ScheduleIn(static_cast<Time>(i % 7), [&sink] { ++sink; });
    }
    eq.RunAll();
  }
  const int64_t before = AllocationCount();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) {
      eq.ScheduleIn(static_cast<Time>(i % 7), [&sink] { ++sink; });
    }
    eq.RunAll();
  }
  EXPECT_EQ(AllocationCount() - before, 0)
      << "schedule->fire allocated on the steady-state path";
  EXPECT_EQ(sink, 104 * 256);
}

TEST(EventCoreAlloc, ScheduleCancelCycleIsAllocationFree) {
  EventQueue eq;
  for (int i = 0; i < 64; ++i) eq.Cancel(eq.ScheduleIn(1000, [] {}));
  eq.RunAll();
  const int64_t before = AllocationCount();
  for (int round = 0; round < 10000; ++round) {
    // The timer idiom: arm, cancel, and the tombstone drains at the next
    // quiescent point (tombstones are popped lazily, so an unbounded
    // cancel-without-ever-running loop would legitimately grow the heap).
    EventHandle h = eq.ScheduleIn(1000, [] {});
    eq.Cancel(h);
    eq.RunAll();
  }
  EXPECT_EQ(AllocationCount() - before, 0)
      << "schedule->cancel allocated on the steady-state path";
}

TEST(EventCoreAlloc, WarmRingBufferIsAllocationFree) {
  QueuePool pool;
  RingBuffer<Packet> ring(&pool);
  Packet p;
  for (int i = 0; i < 100; ++i) ring.push_back(p);  // warm to capacity 128
  ring.clear();
  const int64_t before = AllocationCount();
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 100; ++i) ring.push_back(p);
    while (!ring.empty()) ring.pop_front();
  }
  EXPECT_EQ(AllocationCount() - before, 0)
      << "warm RingBuffer push/pop allocated";
}

TEST(EventCoreAlloc, SteadyStateIncastIsAllocationFree) {
  // The whole engine end to end: an 8:1 unbounded DCQCN incast (the
  // BM_SimulatedIncastMillisecond workload). After the warm-up millisecond
  // every queue, ring, slot and hash table has hit its high-water mark;
  // forwarding, pacing, PFC, ECN marking, ACK/CNP generation and all timer
  // churn must then run without a single allocation.
  const int k = 8;
  Network net(1);
  StarTopology topo = BuildStar(net, k + 1, TopologyOptions{});
  for (int i = 0; i < k; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[static_cast<size_t>(k)]->id();
    f.size_bytes = 0;  // unbounded
    f.mode = TransportMode::kRdmaDcqcn;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(2));  // warm-up: converge past the incast onset
  const int64_t pool_blocks_before = net.pool().allocated_blocks();
  const int64_t before = AllocationCount();
  net.RunFor(Milliseconds(2));
  EXPECT_EQ(AllocationCount() - before, 0)
      << "steady-state incast forwarding allocated";
  EXPECT_EQ(net.pool().allocated_blocks(), pool_blocks_before);
}

}  // namespace
}  // namespace dcqcn
