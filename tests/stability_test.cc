// Tests for the fluid stability probe (the paper's §5 future-work item).
#include "fluid/stability.h"

#include <gtest/gtest.h>

namespace dcqcn {
namespace {

FluidParams Deployment(int n) {
  return FluidParams::FromDcqcn(DcqcnParams::Deployment(), Gbps(40), n);
}

TEST(Stability, DeploymentParamsStableAtTwoFlows) {
  const StabilityResult r = ProbeStability(Deployment(2));
  EXPECT_TRUE(r.stable);
  EXPECT_LT(r.envelope_rate, 0.0);
}

TEST(Stability, DeploymentParamsStableAtEightFlows) {
  const StabilityResult r = ProbeStability(Deployment(8));
  EXPECT_TRUE(r.stable);
}

TEST(Stability, LargeGDestabilizes) {
  // g = 1/4 overreacts: alpha tracks the (delayed) marking signal too
  // aggressively and the loop rings.
  FluidParams p = Deployment(8);
  p.g = 1.0 / 4.0;
  EXPECT_FALSE(ProbeStability(p).stable);
}

TEST(Stability, Fig12RegimeReproduced) {
  // g = 1/16 is fine at 2:1 but unstable at 8:1 — the quantitative backing
  // for Fig. 12's "smaller g" recommendation.
  FluidParams two = Deployment(2);
  two.g = 1.0 / 16.0;
  FluidParams eight = Deployment(8);
  eight.g = 1.0 / 16.0;
  EXPECT_TRUE(ProbeStability(two).stable);
  EXPECT_FALSE(ProbeStability(eight).stable);
}

TEST(Stability, LongerFeedbackDelayDestabilizes) {
  FluidParams p = Deployment(2);
  EXPECT_TRUE(ProbeStability(p).stable);
  p.tau_star *= 4;
  EXPECT_FALSE(ProbeStability(p).stable);
}

TEST(Stability, SmallerGDampsFaster) {
  FluidParams coarse = Deployment(8);
  coarse.g = 1.0 / 64.0;
  FluidParams fine = Deployment(8);
  fine.g = 1.0 / 256.0;
  const StabilityResult rc_ = ProbeStability(coarse);
  const StabilityResult rf = ProbeStability(fine);
  ASSERT_TRUE(rc_.stable);
  ASSERT_TRUE(rf.stable);
  EXPECT_LT(rf.envelope_rate, rc_.envelope_rate);
}

TEST(Stability, WarmStartReallyIsAFixedPoint) {
  // Without a perturbation the model must sit still at the fixed point.
  const FluidParams p = Deployment(4);
  const FluidFixedPoint fp = SolveFixedPoint(p);
  FluidModel m(p);
  m.WarmStartAtFixedPoint(fp);
  const double fair = p.capacity_pps / 4;
  m.RunUntil(0.02);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(m.flow(i).rc, fair, fair * 0.02) << i;
  }
  EXPECT_NEAR(m.queue_bytes(), fp.queue_bytes,
              std::max(2e3, fp.queue_bytes * 0.2));
}

TEST(Stability, PerturbClampsToBounds) {
  const FluidParams p = Deployment(2);
  FluidModel m(p);
  m.StartFlow(0);
  m.Perturb(0, 100.0);
  EXPECT_LE(m.flow(0).rc, p.line_rate_pps);
  m.Perturb(0, 1e-9);
  EXPECT_GE(m.flow(0).rc, p.min_rate_pps);
}

}  // namespace
}  // namespace dcqcn
