// Tests for the §4 buffer-threshold analysis. The paper's numbers for the
// Arista 7050QX32 (Trident II, 12 MB, 32x40G, 8 priorities, 1000 B MTU):
//   t_flight ~= 22.4 KB, static t_PFC <= 24.47 KB, naive t_ECN < 0.85 KB
//   (infeasible, < 1 MTU), dynamic bound with beta=8 ~= 21.7 KB.
#include "core/thresholds.h"

#include <gtest/gtest.h>

namespace dcqcn {
namespace {

SwitchBufferSpec PaperSpec() { return SwitchBufferSpec{}; }

TEST(Thresholds, HeadroomMatchesPaper) {
  // Paper: "we get t_flight = 22.4KB per port, per priority."
  const Bytes h = HeadroomPerPortPriority(PaperSpec());
  EXPECT_NEAR(static_cast<double>(h), 22.4e3, 1.0e3);
}

TEST(Thresholds, HeadroomGrowsWithCableLength) {
  SwitchBufferSpec near = PaperSpec();
  SwitchBufferSpec far = PaperSpec();
  far.cable_delay = near.cable_delay * 4;
  EXPECT_GT(HeadroomPerPortPriority(far), HeadroomPerPortPriority(near));
}

TEST(Thresholds, HeadroomGrowsWithRate) {
  SwitchBufferSpec slow = PaperSpec();
  slow.port_rate = Gbps(10);
  EXPECT_LT(HeadroomPerPortPriority(slow),
            HeadroomPerPortPriority(PaperSpec()));
}

TEST(Thresholds, StaticPfcMatchesPaper) {
  // Paper: "t_PFC <= 24.47KB" — the formula (B - 8 n t_flight) / (8 n).
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  const Bytes t = StaticPfcThreshold(spec, h);
  EXPECT_NEAR(static_cast<double>(t), 24.47e3, 2.5e3);
  // Exact identity check against the formula.
  EXPECT_EQ(t, (spec.total_buffer - 8 * 32 * h) / (8 * 32));
}

TEST(Thresholds, NaiveEcnBoundInfeasible) {
  // Paper: with the static t_PFC, t_ECN < 0.85KB "less than one MTU and
  // hence infeasible".
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  EXPECT_LT(StaticEcnBound(spec, h), spec.mtu);
}

TEST(Thresholds, DynamicEcnBoundFeasibleWithBeta8) {
  // Paper: beta = 8 leads to t_ECN < ~21.7KB — comfortably above one MTU.
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  const Bytes bound = DynamicEcnBound(spec, h, 8.0);
  EXPECT_GT(bound, spec.mtu);
  EXPECT_NEAR(static_cast<double>(bound), 21.7e3, 3.0e3);
}

TEST(Thresholds, LargerBetaLeavesMoreRoomForEcn) {
  // "Obviously, larger beta leaves more room for t_ECN."
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  Bytes prev = 0;
  for (double beta : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const Bytes bound = DynamicEcnBound(spec, h, beta);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(Thresholds, DynamicThresholdShrinksWithOccupancy) {
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  const Bytes t0 = DynamicPfcThreshold(spec, h, 8.0, 0);
  const Bytes t1 = DynamicPfcThreshold(spec, h, 8.0, 1 * kMiB);
  const Bytes t2 = DynamicPfcThreshold(spec, h, 8.0, 6 * kMiB);
  EXPECT_GT(t0, t1);
  EXPECT_GT(t1, t2);
}

TEST(Thresholds, DynamicThresholdZeroWhenFull) {
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  EXPECT_EQ(DynamicPfcThreshold(spec, h, 8.0, spec.total_buffer), 0);
}

TEST(Thresholds, EcnBeforePfcGuaranteeHolds) {
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  const Bytes bound = DynamicEcnBound(spec, h, 8.0);
  // The deployment Kmin (5 KB) satisfies the guarantee; a 120 KB Kmin (the
  // Fig. 18 misconfiguration used 5x the static bound) does not.
  EXPECT_TRUE(EcnBeforePfcGuaranteed(spec, h, 8.0, 5 * kKB));
  EXPECT_TRUE(EcnBeforePfcGuaranteed(spec, h, 8.0, bound - kMtu));
  EXPECT_FALSE(EcnBeforePfcGuaranteed(spec, h, 8.0, 120 * kKB));
}

TEST(Thresholds, FeasibleRegionIsContiguous) {
  // Property: if t is guaranteed, every t' < t is too.
  const auto spec = PaperSpec();
  const Bytes h = HeadroomPerPortPriority(spec);
  bool guaranteed_so_far = true;
  for (Bytes t = 1 * kKB; t <= 64 * kKB; t += 1 * kKB) {
    const bool g = EcnBeforePfcGuaranteed(spec, h, 8.0, t);
    if (!guaranteed_so_far) {
      EXPECT_FALSE(g);
    }
    guaranteed_so_far = g;
  }
}

}  // namespace
}  // namespace dcqcn
