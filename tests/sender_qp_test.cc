// Focused sender-QP tests: pacing, message bookkeeping, loss recovery
// granularity, timer arming, DCTCP windowing. Driven through a 2-3 host
// star so the QP runs against the real NIC scheduler and wire.
#include "nic/sender_qp.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace dcqcn {
namespace {

struct World {
  Network net{1};
  StarTopology topo;

  explicit World(TopologyOptions opt = TopologyOptions{}, int hosts = 2)
      : topo(BuildStar(net, hosts, opt)) {}

  SenderQp* StartFlow(int src, int dst, Bytes size, TransportMode mode,
                      Rate /*unused*/ = 0) {
    FlowSpec f;
    f.flow_id = net.NextFlowId();
    f.src_host = topo.hosts[static_cast<size_t>(src)]->id();
    f.dst_host = topo.hosts[static_cast<size_t>(dst)]->id();
    f.size_bytes = size;
    f.mode = mode;
    return net.StartFlow(f);
  }
};

TEST(SenderQp, PacingEnforcesRpRate) {
  // Force the RP to a known rate via synthetic CNPs, then check the paced
  // throughput matches R_C.
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 0, TransportMode::kRdmaDcqcn);
  w.net.RunFor(Milliseconds(1));
  // Two synthetic CNPs: 40 -> 20 -> ~10 Gbps (alpha stays ~1).
  qp->OnCnp(w.net.eq().Now());
  qp->OnCnp(w.net.eq().Now());
  const Rate rate = qp->current_rate();
  ASSERT_LT(rate, Gbps(12));
  const Bytes before =
      w.topo.hosts[1]->ReceiverDeliveredBytes(qp->spec().flow_id);
  w.net.RunFor(Milliseconds(2));
  const Bytes after =
      w.topo.hosts[1]->ReceiverDeliveredBytes(qp->spec().flow_id);
  const double measured = static_cast<double>(after - before) * 8 / 2e-3;
  // Rate rises during the window (timers run), so allow generous headroom
  // above R_C but require it to be far below line rate.
  EXPECT_GT(measured, rate * 0.8);
  EXPECT_LT(measured, Gbps(25));
}

TEST(SenderQp, CompleteReflectsMessageQueue) {
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 10 * 1000, TransportMode::kRdmaRaw);
  EXPECT_FALSE(qp->complete());
  w.net.RunFor(Milliseconds(1));
  EXPECT_TRUE(qp->complete());
  qp->EnqueueMessage(5 * 1000);
  EXPECT_FALSE(qp->complete());
  w.net.RunFor(Milliseconds(1));
  EXPECT_TRUE(qp->complete());
}

TEST(SenderQp, MessageRecordsCarryPerMessageBytesAndTimes) {
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 100 * 1000, TransportMode::kRdmaRaw);
  w.net.RunFor(Milliseconds(1));
  qp->EnqueueMessage(300 * 1000);
  w.net.RunFor(Milliseconds(1));
  const auto& recs = w.topo.hosts[0]->completed_flows();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].bytes, 100 * 1000);
  EXPECT_EQ(recs[1].bytes, 300 * 1000);
  EXPECT_GT(recs[1].start_time, recs[0].start_time);
  EXPECT_GT(recs[1].finish_time, recs[1].start_time);
  // 300 KB at 40 Gbps = 60 us + ~RTT.
  EXPECT_LT(recs[1].fct(), Microseconds(80));
}

TEST(SenderQp, UnboundedFlowNeverCompletes) {
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 0, TransportMode::kRdmaRaw);
  w.net.RunFor(Milliseconds(5));
  EXPECT_FALSE(qp->complete());
  EXPECT_TRUE(w.topo.hosts[0]->completed_flows().empty());
  EXPECT_GT(qp->counters().packets_sent, 20000);
}

TEST(SenderQp, EnqueueOnUnboundedFlowDies) {
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 0, TransportMode::kRdmaRaw);
  EXPECT_DEATH(qp->EnqueueMessage(1000), "");
}

TEST(SenderQp, PartialLastPacketSizes) {
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 2500, TransportMode::kRdmaRaw);
  w.net.RunFor(Milliseconds(1));
  EXPECT_TRUE(qp->complete());
  // 2500 B = 2 full MTUs + 500 B.
  EXPECT_EQ(qp->counters().packets_sent, 3);
  EXPECT_EQ(qp->counters().bytes_sent, 2500);
  EXPECT_EQ(w.topo.hosts[1]->ReceiverDeliveredBytes(qp->spec().flow_id),
            2500);
}

TEST(SenderQp, CnpCounterAndRpWiring) {
  World w(TopologyOptions{}, 3);
  SenderQp* a = w.StartFlow(0, 2, 0, TransportMode::kRdmaDcqcn);
  SenderQp* b = w.StartFlow(1, 2, 0, TransportMode::kRdmaDcqcn);
  w.net.RunFor(Milliseconds(10));
  EXPECT_GT(a->counters().cnps_received + b->counters().cnps_received, 0);
  // Any QP that received a CNP has an engaged (or recovered) RP.
  if (a->counters().cnps_received > 0) {
    EXPECT_EQ(a->rp()->cnps_received(), a->counters().cnps_received);
  }
}

TEST(SenderQp, RawModeHasNoRp) {
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 0, TransportMode::kRdmaRaw);
  EXPECT_EQ(qp->rp(), nullptr);
  // CNPs to a raw QP are counted but ignored.
  qp->OnCnp(0);
  EXPECT_EQ(qp->counters().cnps_received, 1);
  w.net.RunFor(Milliseconds(1));
  EXPECT_DOUBLE_EQ(qp->current_rate(), Gbps(40));
}

TEST(SenderQp, DctcpSlowStartThenCa) {
  TopologyOptions opt;
  opt.switch_config.red = RedEcnConfig::CutOff(160 * kKB);
  World w(opt, 3);
  SenderQp* qp = w.StartFlow(0, 2, 0, TransportMode::kDctcp);
  SenderQp* other = w.StartFlow(1, 2, 0, TransportMode::kDctcp);
  const Bytes w0 = qp->cwnd();
  w.net.RunFor(Microseconds(200));
  // Slow start: window grows quickly from the initial 10 MTU.
  EXPECT_GT(qp->cwnd(), w0);
  w.net.RunFor(Milliseconds(20));
  // Two flows into one port pin the queue at K: marks arrive and at least
  // one sender's alpha becomes positive.
  EXPECT_GT(qp->dctcp_alpha() + other->dctcp_alpha(), 0.0);
}

TEST(SenderQp, DctcpWindowNeverBelowMinCwnd) {
  TopologyOptions opt;
  opt.switch_config.red = RedEcnConfig::CutOff(10 * kKB);  // heavy marking
  World w(opt, 3);
  SenderQp* a = w.StartFlow(0, 2, 0, TransportMode::kDctcp);
  SenderQp* b = w.StartFlow(1, 2, 0, TransportMode::kDctcp);
  w.net.RunFor(Milliseconds(20));
  EXPECT_GE(a->cwnd(), kMtu);
  EXPECT_GE(b->cwnd(), kMtu);
}

TEST(SenderQp, RetxTimeoutRecoversFromTotalAckLoss) {
  // Break the reverse path after start: the receiver's ACKs vanish, the
  // retransmission timer must eventually fire (we simulate by pausing the
  // receiver's control traffic for longer than the RTO).
  TopologyOptions opt;
  opt.nic_config.rto = Milliseconds(2);
  World w(opt, 2);
  SenderQp* qp = w.StartFlow(0, 1, 50 * 1000, TransportMode::kRdmaRaw);
  // Pause the receiver NIC's data priority (ACKs ride the data class) so
  // ACKs are held back.
  Packet pause;
  pause.type = PacketType::kPause;
  pause.pfc_priority = kDataPriority;
  w.topo.hosts[1]->ReceivePacket(pause, 0);
  w.net.RunFor(Milliseconds(1));
  EXPECT_FALSE(qp->complete());  // data delivered but ACKs stuck
  // Release the control class; everything completes (possibly after a
  // timeout-driven rewind).
  Packet resume = pause;
  resume.type = PacketType::kResume;
  w.topo.hosts[1]->ReceivePacket(resume, 0);
  w.net.RunFor(Milliseconds(10));
  EXPECT_TRUE(qp->complete());
}

TEST(SenderQp, JitterKeepsLineRateWithinTwoPercent) {
  // Pacing jitter must not meaningfully reduce a solo flow's goodput.
  World w;
  SenderQp* qp = w.StartFlow(0, 1, 4000 * 1000, TransportMode::kRdmaRaw);
  w.net.RunFor(Milliseconds(2));
  ASSERT_TRUE(qp->complete());
  const auto& rec = w.topo.hosts[0]->completed_flows()[0];
  EXPECT_GT(rec.goodput(), 0.975 * Gbps(40));
}

}  // namespace
}  // namespace dcqcn
