// PFC system tests: cascade propagation across the Clos fabric, the
// lossless guarantee under adversarial load, and resume behavior. Includes
// property-style parameterized sweeps (seeds / incast degrees).
#include <gtest/gtest.h>

#include "net/topology.h"

namespace dcqcn {
namespace {

FlowSpec Greedy(Network& net, RdmaNic* src, RdmaNic* dst, uint64_t salt) {
  FlowSpec f;
  f.flow_id = net.NextFlowId();
  f.src_host = src->id();
  f.dst_host = dst->id();
  f.size_bytes = 0;
  f.mode = TransportMode::kRdmaRaw;
  f.ecmp_salt = salt;
  return f;
}

TEST(PfcCascade, IncastPausesPropagateUpstream) {
  // H11-H14 (pod 0) -> R (pod 1) incast: T4 must pause its uplinks, leaves
  // must pause spines, and spines must pause the pod-0 leaves — the full
  // §2.2 cascade.
  Network net(4);
  ClosTopology topo = BuildClos(net, 5, TopologyOptions{});
  for (int h = 0; h < 4; ++h) {
    net.StartFlow(Greedy(net, topo.host(0, h), topo.host(3, 0),
                         static_cast<uint64_t>(h)));
  }
  net.RunFor(Milliseconds(20));
  // The receiving ToR paused someone.
  EXPECT_GT(topo.tors[3]->counters().pause_frames_sent, 0);
  // The cascade reached the spine layer.
  int64_t spine_rx = 0;
  for (auto* s : topo.spines) spine_rx += s->counters().pause_frames_received;
  EXPECT_GT(spine_rx, 0);
  // And finally the sender-side ToR got paused by its leaves... which shows
  // up as PAUSE frames received at T1.
  EXPECT_GT(topo.tors[0]->counters().pause_frames_received, 0);
  // Lossless despite all of it.
  EXPECT_EQ(net.TotalDrops(), 0);
}

TEST(PfcCascade, SenderNicsGetPausedAtTheEdge) {
  Network net(4);
  ClosTopology topo = BuildClos(net, 5, TopologyOptions{});
  for (int h = 0; h < 4; ++h) {
    net.StartFlow(Greedy(net, topo.host(0, h), topo.host(3, 0),
                         static_cast<uint64_t>(h)));
  }
  net.RunFor(Milliseconds(20));
  int64_t nic_pauses = 0;
  for (int h = 0; h < 4; ++h) {
    nic_pauses += topo.host(0, h)->counters().pause_frames_received;
  }
  EXPECT_GT(nic_pauses, 0);
}

TEST(PfcCascade, NoPausesWithoutCongestion) {
  Network net(4);
  ClosTopology topo = BuildClos(net, 2, TopologyOptions{});
  net.StartFlow(Greedy(net, topo.host(0, 0), topo.host(3, 0), 1));
  net.RunFor(Milliseconds(10));
  EXPECT_EQ(net.TotalPauseFramesSent(), 0);
  EXPECT_EQ(net.TotalDrops(), 0);
}

// ---- Lossless property: PFC + correct thresholds never drop, whatever the
// seed, degree or traffic mix throws at the fabric. ----
class LosslessProperty : public ::testing::TestWithParam<int> {};

TEST_P(LosslessProperty, AdversarialIncastNeverDrops) {
  const int seed = GetParam();
  Network net(static_cast<uint64_t>(seed));
  ClosTopology topo = BuildClos(net, 5, TopologyOptions{});
  Rng rng(static_cast<uint64_t>(seed) * 77 + 1);
  // Random all-to-one incast plus random background pairs, all raw senders
  // at line rate: the worst case for buffer occupancy.
  const int receiver_tor = static_cast<int>(rng.UniformInt(0, 3));
  RdmaNic* r = topo.host(receiver_tor, 0);
  int flows = 0;
  for (int tor = 0; tor < 4 && flows < 8; ++tor) {
    for (int h = 0; h < 5 && flows < 8; ++h) {
      RdmaNic* s = topo.host(tor, h);
      if (s == r) continue;
      net.StartFlow(Greedy(net, s, r, rng.NextU64()));
      ++flows;
    }
  }
  for (int i = 0; i < 4; ++i) {
    RdmaNic* a = topo.host(static_cast<int>(rng.UniformInt(0, 3)),
                           static_cast<int>(rng.UniformInt(0, 4)));
    RdmaNic* b = topo.host(static_cast<int>(rng.UniformInt(0, 3)),
                           static_cast<int>(rng.UniformInt(0, 4)));
    if (a == b) continue;
    net.StartFlow(Greedy(net, a, b, rng.NextU64()));
  }
  net.RunFor(Milliseconds(15));
  EXPECT_EQ(net.TotalDrops(), 0) << "seed " << seed;
  // The bottleneck egress stayed busy: receiver got ~line rate.
  Bytes total = 0;
  for (const auto& nic : net.hosts()) {
    (void)nic;
  }
  for (int fid = 0; fid < flows; ++fid) total += r->ReceiverDeliveredBytes(fid);
  EXPECT_GT(static_cast<double>(total) * 8 / 15e-3, 0.85 * Gbps(40));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LosslessProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- Star-topology incast sweep: lossless + full utilization for any
// degree (the §6.1 validation as a property). ----
class IncastDegree : public ::testing::TestWithParam<int> {};

TEST_P(IncastDegree, LosslessAndUtilizedWithPfcOnly) {
  const int k = GetParam();
  Network net(9);
  StarTopology topo = BuildStar(net, k + 1, TopologyOptions{});
  for (int i = 0; i < k; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[static_cast<size_t>(k)]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kRdmaRaw;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(10));
  EXPECT_EQ(net.TotalDrops(), 0);
  Bytes total = 0;
  for (int i = 0; i < k; ++i) {
    total += topo.hosts[static_cast<size_t>(k)]->ReceiverDeliveredBytes(i);
  }
  EXPECT_GT(static_cast<double>(total) * 8 / 10e-3, 0.95 * Gbps(40));
}

INSTANTIATE_TEST_SUITE_P(Degrees, IncastDegree,
                         ::testing::Values(2, 3, 4, 8, 12, 16, 20));

// ---- The §4 guarantee, observed end to end: with the deployment
// thresholds, the first ECN mark precedes the first PAUSE. ----
class EcnBeforePfc : public ::testing::TestWithParam<int> {};

TEST_P(EcnBeforePfc, FirstMarkPrecedesFirstPause) {
  const int k = GetParam();
  Network net(static_cast<uint64_t>(k) * 31 + 5);
  StarTopology topo = BuildStar(net, k + 1, TopologyOptions{});
  for (int i = 0; i < k; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[static_cast<size_t>(k)]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kRdmaDcqcn;
    net.StartFlow(f);
  }
  // Step the simulation in 1 us slices and record when marking / pausing
  // first happens.
  Time first_mark = -1, first_pause = -1;
  for (Time t = Microseconds(1); t <= Milliseconds(5); t += Microseconds(1)) {
    net.RunUntil(t);
    if (first_mark < 0 && topo.sw->counters().ecn_marked_packets > 0) {
      first_mark = t;
    }
    if (first_pause < 0 && topo.sw->counters().pause_frames_sent > 0) {
      first_pause = t;
    }
    if (first_mark >= 0 && first_pause >= 0) break;
  }
  ASSERT_GE(first_mark, 0) << "incast must trigger marking";
  if (first_pause >= 0) {
    EXPECT_LE(first_mark, first_pause)
        << "ECN must fire before PFC (the §4 threshold guarantee)";
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, EcnBeforePfc, ::testing::Values(4, 8, 16));

TEST(EcnBeforePfcMisconfig, InvertedWithBadThresholds) {
  // The Fig. 18 misconfiguration (static t_PFC at its bound, Kmin = 120 KB)
  // must invert the ordering: PFC first.
  TopologyOptions opt;
  const Bytes headroom = HeadroomPerPortPriority(opt.switch_config.buffer);
  opt.switch_config.dynamic_pfc = false;
  opt.switch_config.static_pfc_threshold =
      StaticPfcThreshold(opt.switch_config.buffer, headroom);
  opt.switch_config.red.kmin = 120 * kKB;
  opt.switch_config.red.kmax = 320 * kKB;
  Network net(6);
  StarTopology topo = BuildStar(net, 9, opt);
  for (int i = 0; i < 8; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[8]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kRdmaDcqcn;
    net.StartFlow(f);
  }
  Time first_mark = -1, first_pause = -1;
  for (Time t = Microseconds(1); t <= Milliseconds(5); t += Microseconds(1)) {
    net.RunUntil(t);
    if (first_mark < 0 && topo.sw->counters().ecn_marked_packets > 0) {
      first_mark = t;
    }
    if (first_pause < 0 && topo.sw->counters().pause_frames_sent > 0) {
      first_pause = t;
    }
    if (first_mark >= 0 && first_pause >= 0) break;
  }
  ASSERT_GE(first_pause, 0);
  EXPECT_TRUE(first_mark < 0 || first_pause < first_mark);
}

TEST(PfcResume, TrafficResumesAfterCongestionClears) {
  // A finite incast: once it drains, PAUSE state must fully clear and a
  // later flow must see an unobstructed fabric.
  Network net(6);
  ClosTopology topo = BuildClos(net, 5, TopologyOptions{});
  for (int h = 0; h < 4; ++h) {
    FlowSpec f;
    f.flow_id = net.NextFlowId();
    f.src_host = topo.host(0, h)->id();
    f.dst_host = topo.host(3, 0)->id();
    f.size_bytes = 2000 * kKB;
    f.mode = TransportMode::kRdmaRaw;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(10));  // incast done and drained
  // No lingering pause state on any switch port.
  for (const auto& sw : net.switches()) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      EXPECT_FALSE(sw->PauseSent(p, kDataPriority));
      EXPECT_FALSE(sw->TxPaused(p, kDataPriority));
    }
    EXPECT_EQ(sw->shared_occupancy(), 0);
  }
  // Fresh flow gets full line rate.
  FlowSpec f;
  f.flow_id = net.NextFlowId();
  f.src_host = topo.host(0, 0)->id();
  f.dst_host = topo.host(3, 1)->id();
  f.size_bytes = 4000 * kKB;
  f.start_time = net.eq().Now();
  f.mode = TransportMode::kRdmaRaw;
  net.StartFlow(f);
  net.RunFor(Milliseconds(2));
  const auto& recs = topo.host(0, 0)->completed_flows();
  ASSERT_FALSE(recs.empty());
  EXPECT_GT(recs.back().goodput(), 0.95 * Gbps(40));
}

TEST(PfcPriorities, PauseOnOneClassDoesNotBlockAnother) {
  // Two flows on different priorities through the same congested port; only
  // the data class is paused upstream, control-class experiments flow.
  // (The switch pauses per (port, priority) — §2.2's "port plus priority".)
  Network net(2);
  StarTopology topo = BuildStar(net, 3, TopologyOptions{});
  // Saturate the egress with a data-priority incast from host 0.
  FlowSpec f;
  f.flow_id = 0;
  f.src_host = topo.hosts[0]->id();
  f.dst_host = topo.hosts[2]->id();
  f.size_bytes = 0;
  f.mode = TransportMode::kRdmaRaw;
  net.StartFlow(f);
  net.RunFor(Milliseconds(5));
  // The switch's data-priority state may be paused, but control priority
  // never is.
  for (int p = 0; p < topo.sw->num_ports(); ++p) {
    EXPECT_FALSE(topo.sw->PauseSent(p, kControlPriority));
  }
}

}  // namespace
}  // namespace dcqcn
