// Property-style parameterized sweeps over protocol invariants:
//  * RED curve monotonicity / bounds across configurations
//  * RP state machine invariants across a (g, F, R_AI) grid and random
//    event sequences
//  * §4 threshold monotonicity in buffer size / port count / beta
//  * ECMP hash uniformity
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "core/red_ecn.h"
#include "core/rp.h"
#include "core/thresholds.h"
#include "net/packet.h"
#include "nic/flow.h"

namespace dcqcn {
namespace {

// ---------- RED curve properties ----------

class RedCurve : public ::testing::TestWithParam<std::tuple<int, int, double>> {
 protected:
  RedEcnConfig Config() const {
    RedEcnConfig c;
    c.enabled = true;
    c.kmin = std::get<0>(GetParam()) * kKB;
    c.kmax = std::get<1>(GetParam()) * kKB;
    c.pmax = std::get<2>(GetParam());
    return c;
  }
};

TEST_P(RedCurve, MonotoneNondecreasingInQueue) {
  const RedEcnConfig c = Config();
  double prev = -1;
  for (Bytes q = 0; q <= c.kmax + 50 * kKB; q += 1 * kKB) {
    const double p = RedMarkProbability(c, q);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST_P(RedCurve, ZeroAtOrBelowKminOneAboveKmax) {
  const RedEcnConfig c = Config();
  EXPECT_EQ(RedMarkProbability(c, 0), 0.0);
  EXPECT_EQ(RedMarkProbability(c, c.kmin), 0.0);
  EXPECT_EQ(RedMarkProbability(c, c.kmax + 1), 1.0);
}

TEST_P(RedCurve, AtMostPmaxWithinTheRamp) {
  const RedEcnConfig c = Config();
  for (Bytes q = c.kmin; q <= c.kmax; q += 1 * kKB) {
    EXPECT_LE(RedMarkProbability(c, q), c.pmax + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RedCurve,
    ::testing::Values(std::make_tuple(5, 200, 0.01),   // deployment
                      std::make_tuple(40, 40, 1.0),    // cut-off
                      std::make_tuple(5, 200, 1.0),
                      std::make_tuple(40, 200, 0.1),
                      std::make_tuple(1, 2000, 0.005)));

// ---------- RP invariants over a parameter grid ----------

struct RpGrid {
  double g;
  int f;
  double rai_mbps;
};

class RpInvariants : public ::testing::TestWithParam<RpGrid> {};

TEST_P(RpInvariants, RandomEventSequencesKeepInvariants) {
  const RpGrid grid = GetParam();
  DcqcnParams params;
  params.g = grid.g;
  params.fast_recovery_steps = grid.f;
  params.rate_ai = Mbps(grid.rai_mbps);
  params.rate_hai = Mbps(grid.rai_mbps * 10);
  const Rate line = Gbps(40);
  RpState rp(params, line);
  Rng rng(42);

  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    if (u < 0.1) {
      rp.OnCnp();
    } else if (u < 0.4) {
      rp.OnAlphaTimer();
    } else if (u < 0.7) {
      rp.OnRateTimer();
    } else {
      rp.OnBytesSent(static_cast<Bytes>(rng.UniformInt(1, 3 * kMtu)));
    }
    // Invariants: rates bounded, target >= some sane floor, alpha in [0,1],
    // counters nonnegative; when not limiting, rate == line.
    EXPECT_GE(rp.current_rate(), params.min_rate * (1 - 1e-12));
    EXPECT_LE(rp.current_rate(), line * (1 + 1e-12));
    EXPECT_LE(rp.target_rate(), line * (1 + 1e-12));
    EXPECT_GE(rp.alpha(), 0.0);
    EXPECT_LE(rp.alpha(), 1.0);
    EXPECT_GE(rp.timer_count(), 0);
    EXPECT_GE(rp.byte_counter_count(), 0);
    if (!rp.limiting()) {
      EXPECT_DOUBLE_EQ(rp.current_rate(), line);
    }
  }
}

TEST_P(RpInvariants, CutThenPureIncreaseIsMonotone) {
  const RpGrid grid = GetParam();
  DcqcnParams params;
  params.g = grid.g;
  params.fast_recovery_steps = grid.f;
  params.rate_ai = Mbps(grid.rai_mbps);
  RpState rp(params, Gbps(40));
  rp.OnCnp();
  rp.OnCnp();
  double prev = rp.current_rate();
  for (int i = 0; i < 5000 && rp.limiting(); ++i) {
    rp.OnRateTimer();
    EXPECT_GE(rp.current_rate(), prev * (1 - 1e-12))
        << "increase-only sequence must be monotone";
    prev = rp.current_rate();
  }
  EXPECT_FALSE(rp.limiting()) << "must eventually recover to line rate";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RpInvariants,
    ::testing::Values(RpGrid{1.0 / 256, 5, 40.0}, RpGrid{1.0 / 16, 5, 40.0},
                      RpGrid{1.0 / 256, 1, 40.0}, RpGrid{1.0 / 256, 10, 5.0},
                      RpGrid{0.5, 3, 400.0}, RpGrid{1.0 / 1024, 5, 40.0}));

// ---------- Threshold monotonicity ----------

class ThresholdScaling : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdScaling, MoreBufferMoreEcnRoom) {
  const int ports = GetParam();
  SwitchBufferSpec a;
  a.num_ports = ports;
  SwitchBufferSpec b = a;
  b.total_buffer = a.total_buffer * 2;
  const Bytes h = HeadroomPerPortPriority(a);
  EXPECT_GT(DynamicEcnBound(b, h, 8.0), DynamicEcnBound(a, h, 8.0));
  EXPECT_GT(StaticPfcThreshold(b, h), StaticPfcThreshold(a, h));
}

TEST_P(ThresholdScaling, MorePortsLessEcnRoom) {
  const int ports = GetParam();
  if (ports >= 64) GTEST_SKIP();
  SwitchBufferSpec a;
  a.num_ports = ports;
  SwitchBufferSpec b = a;
  b.num_ports = ports * 2;
  const Bytes h = HeadroomPerPortPriority(a);
  EXPECT_GT(DynamicEcnBound(a, h, 8.0), DynamicEcnBound(b, h, 8.0));
}

INSTANTIATE_TEST_SUITE_P(PortCounts, ThresholdScaling,
                         ::testing::Values(8, 16, 32, 64));

// ---------- ECMP hash uniformity ----------

class EcmpUniformity : public ::testing::TestWithParam<int> {};

TEST_P(EcmpUniformity, KeysSpreadEvenlyAcrossWays) {
  const int ways = GetParam();
  std::vector<int> buckets(static_cast<size_t>(ways), 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const uint64_t key = FlowEcmpKey(i, /*salt=*/7);
    buckets[EcmpMix(key, /*switch id=*/3) % static_cast<uint64_t>(ways)]++;
  }
  const double expected = static_cast<double>(n) / ways;
  for (int b : buckets) {
    EXPECT_NEAR(b, expected, expected * 0.1);
  }
}

TEST_P(EcmpUniformity, SaltsDecorrelate) {
  // The same flow id under different salts should pick each way with
  // roughly equal frequency.
  const int ways = GetParam();
  std::vector<int> buckets(static_cast<size_t>(ways), 0);
  const int n = 20000;
  for (int s = 0; s < n; ++s) {
    const uint64_t key = FlowEcmpKey(/*flow_id=*/1, static_cast<uint64_t>(s));
    buckets[EcmpMix(key, 5) % static_cast<uint64_t>(ways)]++;
  }
  const double expected = static_cast<double>(n) / ways;
  for (int b : buckets) EXPECT_NEAR(b, expected, expected * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Ways, EcmpUniformity, ::testing::Values(2, 3, 4, 8));

}  // namespace
}  // namespace dcqcn
