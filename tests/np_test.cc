// NP state machine tests (Fig. 6): one CNP per flow per 50 us window.
#include "core/np.h"

#include <gtest/gtest.h>

namespace dcqcn {
namespace {

TEST(Np, FirstMarkedPacketSendsImmediately) {
  DcqcnParams p;
  NpState np;
  EXPECT_TRUE(np.OnMarkedPacket(Microseconds(123), p));
  EXPECT_EQ(np.cnps_sent(), 1);
}

TEST(Np, AtMostOnePerInterval) {
  DcqcnParams p;  // 50 us interval
  NpState np;
  EXPECT_TRUE(np.OnMarkedPacket(0, p));
  for (Time t = Microseconds(1); t < Microseconds(50); t += Microseconds(7)) {
    EXPECT_FALSE(np.OnMarkedPacket(t, p));
  }
  EXPECT_TRUE(np.OnMarkedPacket(Microseconds(50), p));
  EXPECT_EQ(np.cnps_sent(), 2);
}

TEST(Np, QuietPeriodThenImmediateAgain) {
  DcqcnParams p;
  NpState np;
  EXPECT_TRUE(np.OnMarkedPacket(0, p));
  // Long silence: next marked packet elicits a CNP immediately.
  EXPECT_TRUE(np.OnMarkedPacket(Milliseconds(10), p));
}

TEST(Np, RateBoundedOverBurst) {
  DcqcnParams p;
  NpState np;
  // 1000 marked packets over 1 ms -> at most ceil(1ms/50us)+1 = 21 CNPs.
  int sent = 0;
  for (int i = 0; i < 1000; ++i) {
    const Time t = i * Microseconds(1);
    sent += np.OnMarkedPacket(t, p);
  }
  EXPECT_LE(sent, 21);
  EXPECT_GE(sent, 19);
}

TEST(CnpGate, DisabledWhenZeroGap) {
  DcqcnParams p;
  p.cnp_gen_min_gap = 0;
  CnpGenerationGate gate;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(gate.Allow(0, p));
}

TEST(CnpGate, EnforcesNicWideGap) {
  DcqcnParams p;
  p.cnp_gen_min_gap = Microseconds(1);
  CnpGenerationGate gate;
  EXPECT_TRUE(gate.Allow(0, p));
  EXPECT_FALSE(gate.Allow(Nanoseconds(500), p));
  EXPECT_TRUE(gate.Allow(Microseconds(1), p));
  EXPECT_EQ(gate.suppressed(), 1);
}

}  // namespace
}  // namespace dcqcn
