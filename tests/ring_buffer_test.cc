// RingBuffer + QueuePool unit tests: FIFO semantics across wraparound and
// growth, linearization on reallocation, and block recycling through the
// per-network pool.
#include "sim/ring_buffer.h"

#include <gtest/gtest.h>

#include "sim/queue_pool.h"

namespace dcqcn {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 0u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapAroundKeepsOrder) {
  // Interleave push/pop so head and tail lap the physical buffer many
  // times without ever growing it.
  RingBuffer<int> rb;
  int next_push = 0;
  int next_pop = 0;
  for (int i = 0; i < 4; ++i) rb.push_back(next_push++);  // cap stays 8
  const size_t cap = rb.capacity();
  for (int round = 0; round < 1000; ++round) {
    rb.push_back(next_push++);
    EXPECT_EQ(rb.front(), next_pop);
    rb.pop_front();
    ++next_pop;
  }
  EXPECT_EQ(rb.capacity(), cap);
  EXPECT_EQ(rb.size(), 4u);
}

TEST(RingBuffer, GrowthLinearizesWrappedContents) {
  // Force a grow while the live region wraps the physical end: contents
  // must come out in FIFO order afterwards.
  RingBuffer<int> rb;
  for (int i = 0; i < 8; ++i) rb.push_back(i);   // full at capacity 8
  for (int i = 0; i < 5; ++i) rb.pop_front();    // head mid-buffer
  for (int i = 8; i < 13; ++i) rb.push_back(i);  // tail wraps
  for (int i = 13; i < 40; ++i) rb.push_back(i);  // forces growth
  for (int i = 5; i < 40; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, IndexingFromFront) {
  RingBuffer<int> rb;
  for (int i = 0; i < 20; ++i) rb.push_back(i);
  for (int i = 0; i < 7; ++i) rb.pop_front();
  for (size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb[i], 7 + static_cast<int>(i));
  }
}

TEST(RingBuffer, ClearResetsButKeepsStorage) {
  RingBuffer<int> rb;
  for (int i = 0; i < 50; ++i) rb.push_back(i);
  const size_t cap = rb.capacity();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), cap);
  rb.push_back(7);
  EXPECT_EQ(rb.front(), 7);
}

TEST(QueuePool, RecyclesBlocksAcrossRings) {
  QueuePool pool;
  {
    RingBuffer<int64_t> rb(&pool);
    for (int i = 0; i < 100; ++i) rb.push_back(i);
  }  // releases its block(s) into the pool
  const int64_t allocated = pool.allocated_blocks();
  EXPECT_GT(allocated, 0);
  {
    // A second ring growing through the same sizes reuses the freed blocks
    // instead of allocating.
    RingBuffer<int64_t> rb(&pool);
    for (int i = 0; i < 100; ++i) rb.push_back(i);
    EXPECT_EQ(pool.allocated_blocks(), allocated);
    EXPECT_GT(pool.reused_blocks(), 0);
  }
}

TEST(QueuePool, SeparatesSizeClasses) {
  QueuePool pool;
  void* small = pool.Acquire(64);
  void* large = pool.Acquire(4096);
  pool.Release(small, 64);
  pool.Release(large, 4096);
  // Same classes come back recycled, in LIFO order.
  EXPECT_EQ(pool.Acquire(64), small);
  EXPECT_EQ(pool.Acquire(4096), large);
  const int64_t allocated = pool.allocated_blocks();
  // A distinct class allocates fresh.
  void* mid = pool.Acquire(1024);
  EXPECT_EQ(pool.allocated_blocks(), allocated + 1);
  pool.Release(mid, 1024);
  pool.Release(small, 64);
  pool.Release(large, 4096);
}

TEST(QueuePool, RoundsUpWithinClass) {
  QueuePool pool;
  // 100 bytes lands in the 128-byte class; releasing with the same request
  // size must return it to that class.
  void* p = pool.Acquire(100);
  pool.Release(p, 100);
  EXPECT_EQ(pool.Acquire(128), p);
  pool.Release(p, 128);
}

}  // namespace
}  // namespace dcqcn
