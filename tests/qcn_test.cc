// QCN (802.1Qau) baseline tests — the protocol DCQCN generalizes, and the
// §2.3 demonstration of why it cannot run across an IP-routed fabric.
#include "core/qcn.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace dcqcn {
namespace {

QcnParams Params() {
  QcnParams p;
  p.enabled = true;
  return p;
}

TEST(QcnCp, NoFeedbackBelowEquilibrium) {
  QcnParams p = Params();
  p.sample_prob = 1.0;  // sample everything for determinism
  QcnCp cp;
  Rng rng(1);
  // Ramp the queue up to just below q_eq: Fb = -(q_off + w*q_delta) with
  // q_off < 0 and small deltas stays positive-or-zero => no feedback.
  for (Bytes q = 0; q < p.q_eq / 2; q += 1000) {
    EXPECT_EQ(cp.OnPacketArrival(p, q, rng), 0) << q;
  }
}

TEST(QcnCp, FeedbackGrowsWithCongestion) {
  QcnParams p = Params();
  p.sample_prob = 1.0;
  QcnCp cp;
  Rng rng(1);
  (void)cp.OnPacketArrival(p, p.q_eq, rng);  // settle q_old at q_eq
  const int mild = cp.OnPacketArrival(p, p.q_eq + 10 * kKB, rng);
  QcnCp cp2;
  (void)cp2.OnPacketArrival(p, p.q_eq, rng);
  const int severe = cp2.OnPacketArrival(p, p.q_eq + 60 * kKB, rng);
  EXPECT_GT(mild, 0);
  EXPECT_GT(severe, mild);
  EXPECT_LT(severe, p.quant_levels);
}

TEST(QcnCp, DerivativeTermReactsToRapidGrowth) {
  QcnParams p = Params();
  p.sample_prob = 1.0;
  QcnCp slow_cp, fast_cp;
  Rng rng(1);
  // Same queue level, different growth since the last sample.
  (void)slow_cp.OnPacketArrival(p, p.q_eq + 9 * kKB, rng);
  const int slow = slow_cp.OnPacketArrival(p, p.q_eq + 10 * kKB, rng);
  (void)fast_cp.OnPacketArrival(p, p.q_eq - 30 * kKB, rng);
  const int fast = fast_cp.OnPacketArrival(p, p.q_eq + 10 * kKB, rng);
  EXPECT_GT(fast, slow);
}

TEST(QcnCp, SamplingRateRespected) {
  QcnParams p = Params();
  p.sample_prob = 0.01;
  QcnCp cp;
  Rng rng(7);
  int fed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    fed += cp.OnPacketArrival(p, p.q_eq + 50 * kKB, rng) > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(fed) / n, 0.01, 0.003);
}

TEST(QcnRp, FeedbackCutsRateProportionally) {
  DcqcnParams params;
  RpState rp(params, Gbps(40));
  rp.OnQcnFeedback(0.25);
  EXPECT_DOUBLE_EQ(rp.current_rate(), Gbps(30));
  EXPECT_DOUBLE_EQ(rp.target_rate(), Gbps(40));
  EXPECT_TRUE(rp.limiting());
  // Alpha untouched (QCN has none).
  EXPECT_DOUBLE_EQ(rp.alpha(), 1.0);
}

TEST(Qcn, TwoFlowsShareWithinAnL2Domain) {
  // On a single switch ("within an L2 domain", §2.3) QCN works: two greedy
  // flows share the bottleneck and the queue tracks q_eq.
  TopologyOptions opt;
  opt.switch_config.red.enabled = false;  // QCN only
  opt.switch_config.qcn = Params();
  Network net(5);
  StarTopology topo = BuildStar(net, 3, opt);
  FlowSpec f1;
  f1.flow_id = 0;
  f1.src_host = topo.hosts[0]->id();
  f1.dst_host = topo.hosts[2]->id();
  f1.size_bytes = 0;
  f1.mode = TransportMode::kQcn;
  net.StartFlow(f1);
  FlowSpec f2 = f1;
  f2.flow_id = 1;
  f2.src_host = topo.hosts[1]->id();
  net.StartFlow(f2);
  net.RunFor(Milliseconds(40));
  const Bytes a0 = topo.hosts[2]->ReceiverDeliveredBytes(0);
  const Bytes b0 = topo.hosts[2]->ReceiverDeliveredBytes(1);
  net.RunFor(Milliseconds(20));
  const double ra =
      static_cast<double>(topo.hosts[2]->ReceiverDeliveredBytes(0) - a0);
  const double rb =
      static_cast<double>(topo.hosts[2]->ReceiverDeliveredBytes(1) - b0);
  EXPECT_GT((ra + rb) * 8 / 20e-3, 0.8 * Gbps(40));
  EXPECT_NEAR(ra / (ra + rb), 0.5, 0.2);
  EXPECT_GT(topo.sw->counters().qcn_feedback_sent, 0);
  EXPECT_EQ(topo.sw->counters().qcn_feedback_dropped, 0);
}

TEST(Qcn, FeedbackCannotCrossRoutedHops) {
  // The §2.3 argument as an executable: in the Clos fabric, congestion at
  // the destination ToR generates QCN feedback, but the frames die at the
  // first L3 boundary, so remote senders never slow down and PFC has to
  // take over.
  TopologyOptions opt;
  opt.switch_config.red.enabled = false;
  opt.switch_config.qcn = Params();
  Network net(5);
  ClosTopology topo = BuildClos(net, 5, opt);
  for (int h = 0; h < 4; ++h) {
    FlowSpec f;
    f.flow_id = h;
    f.src_host = topo.host(0, h)->id();  // pod 0 senders
    f.dst_host = topo.host(3, 0)->id();  // pod 1 receiver
    f.size_bytes = 0;
    f.mode = TransportMode::kQcn;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(20));
  // Feedback was generated at the congested ToR...
  EXPECT_GT(topo.tors[3]->counters().qcn_feedback_sent, 0);
  // ...but dropped at the leaves (first routed hop toward the senders).
  int64_t dropped = 0;
  for (const auto& sw : net.switches()) {
    dropped += sw->counters().qcn_feedback_dropped;
  }
  EXPECT_GT(dropped, 0);
  // Every notification the bottleneck ToR generated was dropped en route
  // (its neighbors are all switches). Senders may still receive feedback —
  // but only from their *own* ToR once PFC backpressure piles queues up
  // there, never about the true bottleneck; PFC had to carry the
  // congestion across the fabric.
  int64_t dropped_at_pod1_leaves = 0;
  for (int leaf : {2, 3}) {
    dropped_at_pod1_leaves +=
        topo.leaves[static_cast<size_t>(leaf)]->counters()
            .qcn_feedback_dropped;
  }
  EXPECT_GE(dropped_at_pod1_leaves,
            topo.tors[3]->counters().qcn_feedback_sent);
  EXPECT_GT(net.TotalPauseFramesSent(), 0);
}

TEST(Qcn, DcqcnSucceedsWhereQcnFails) {
  // Same Clos incast: DCQCN's IP-routable CNPs reach the senders and PFC
  // goes quiet — the whole point of the paper.
  auto pauses = [](TransportMode mode, bool qcn_enabled) {
    TopologyOptions opt;
    if (qcn_enabled) {
      opt.switch_config.red.enabled = false;
      opt.switch_config.qcn = Params();
    }
    Network net(5);
    ClosTopology topo = BuildClos(net, 5, opt);
    for (int h = 0; h < 4; ++h) {
      FlowSpec f;
      f.flow_id = h;
      f.src_host = topo.host(0, h)->id();
      f.dst_host = topo.host(3, 0)->id();
      f.size_bytes = 0;
      f.mode = mode;
      net.StartFlow(f);
    }
    net.RunFor(Milliseconds(20));
    return net.TotalPauseFramesSent();
  };
  const int64_t qcn = pauses(TransportMode::kQcn, true);
  const int64_t dcqcn = pauses(TransportMode::kRdmaDcqcn, false);
  EXPECT_GT(qcn, 100);
  EXPECT_LT(dcqcn, qcn / 10);
}

}  // namespace
}  // namespace dcqcn
