// Telemetry subsystem tests: the structured event tracer (ring semantics,
// deterministic ordering, zero-event disabled mode, Chrome JSON export),
// the metric registry (label-keyed uniqueness, snapshot round-trip), the
// registry-driven probes, network metric collection, and the end-to-end
// guarantee the runner builds on: trace bytes independent of --jobs.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/topology.h"
#include "runner/runner.h"
#include "runner/serialize.h"
#include "telemetry/collect.h"
#include "telemetry/event_trace.h"
#include "telemetry/metric_registry.h"
#include "telemetry/probes.h"

namespace dcqcn {
namespace {

using telemetry::EncodeMetricKey;
using telemetry::EventTracer;
using telemetry::MetricLabels;
using telemetry::MetricRegistry;
using telemetry::RegistrySnapshot;
using telemetry::TraceEventType;
using telemetry::TraceRecord;

// ---------------------------------------------------------------- tracer --

TEST(EventTracer, RingWraparoundKeepsNewestInOrder) {
  EventTracer tracer(8);
  for (int i = 0; i < 20; ++i) {
    tracer.Record(i * kMicrosecond, TraceEventType::kPktEnqueue,
                  /*node=*/0, /*port=*/0, /*priority=*/3, /*flow=*/-1,
                  /*value=*/i);
  }
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.overwritten(), 12u);

  const std::vector<TraceRecord> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].value, 12 + static_cast<int64_t>(i));
    EXPECT_EQ(snap[i].t, (12 + static_cast<Time>(i)) * kMicrosecond);
  }
}

TEST(EventTracer, NoWraparoundBelowCapacity) {
  EventTracer tracer(16);
  for (int i = 0; i < 5; ++i) {
    tracer.Record(i, TraceEventType::kEcnMark, 1, 2, 3, -1, i);
  }
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.overwritten(), 0u);
  const std::vector<TraceRecord> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].value, static_cast<int64_t>(i));
  }
}

TEST(EventTracer, EqualTimestampsPreserveInsertionOrder) {
  // Events at the same simulated instant must come back in the order they
  // were recorded (the EventQueue's FIFO tiebreak), including across a
  // wraparound boundary.
  EventTracer tracer(4);
  const Time t = Milliseconds(1);
  for (int i = 0; i < 7; ++i) {
    tracer.Record(t, TraceEventType::kCnpTx, /*node=*/9, /*port=*/0,
                  /*priority=*/0, /*flow=*/i, /*value=*/0);
  }
  const std::vector<TraceRecord> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].flow, 3 + static_cast<int32_t>(i));
  }
}

TEST(EventTracer, ClearResetsEverything) {
  EventTracer tracer(4);
  for (int i = 0; i < 9; ++i) {
    tracer.Record(i, TraceEventType::kPktDrop, 0, 0, 0, -1, i);
  }
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.overwritten(), 0u);
  tracer.Record(1, TraceEventType::kPktDrop, 0, 0, 0, -1, 42);
  const std::vector<TraceRecord> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 42);
}

// A tiny congested run: 3:1 greedy DCQCN incast on a star for 300 us.
// Produces enqueues/dequeues, ECN marks, CNPs and rate updates.
Network& BuildIncast(Network& net, StarTopology* out_topo) {
  StarTopology topo = BuildStar(net, 4, TopologyOptions{});
  for (int i = 0; i < 3; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[3]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kRdmaDcqcn;
    net.StartFlow(f);
  }
  *out_topo = topo;
  return net;
}

TEST(EventTracer, DisabledMeansZeroEventsAndIdenticalSimulation) {
  // Same seed, tracing off vs on: the simulation must be bit-identical
  // (tracing is observation only) and the untraced network must have no
  // tracer at all.
  auto run = [](bool traced, int64_t* cnps, Bytes* delivered) {
    Network net(7);
    if (traced) net.EnableTracing();
    StarTopology topo;
    BuildIncast(net, &topo);
    net.RunFor(Microseconds(300));
    *cnps = net.TotalCnpsSent();
    *delivered = topo.hosts[3]->ReceiverDeliveredBytes(0) +
                 topo.hosts[3]->ReceiverDeliveredBytes(1) +
                 topo.hosts[3]->ReceiverDeliveredBytes(2);
    return net.tracer() != nullptr ? net.tracer()->total_recorded() : 0;
  };

  int64_t cnps_off = 0, cnps_on = 0;
  Bytes bytes_off = 0, bytes_on = 0;
  const uint64_t events_off = run(false, &cnps_off, &bytes_off);
  const uint64_t events_on = run(true, &cnps_on, &bytes_on);

  EXPECT_EQ(events_off, 0u);
  EXPECT_GT(events_on, 0u);
  EXPECT_EQ(cnps_off, cnps_on);
  EXPECT_EQ(bytes_off, bytes_on);
}

TEST(EventTracer, ChromeJsonExportIsDeterministicAndComplete) {
  auto trace_of = [] {
    Network net(11);
    net.EnableTracing();
    StarTopology topo;
    BuildIncast(net, &topo);
    net.RunFor(Microseconds(300));
    return net.ExportChromeTrace();
  };
  const std::string json = trace_of();

  // Structure + the event classes a congested DCQCN run must surface.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"q p"), std::string::npos);       // queues
  EXPECT_NE(json.find("\"name\":\"ECN p"), std::string::npos);     // marks
  EXPECT_NE(json.find("\"name\":\"CNP tx\""), std::string::npos);  // NP
  EXPECT_NE(json.find("\"name\":\"CNP rx\""), std::string::npos);  // RP in
  EXPECT_NE(json.find("\"name\":\"rate_gbps\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("switch 0"), std::string::npos);  // node naming
  EXPECT_EQ(json.back(), '}');

  // Same seed, fresh network: byte-identical export.
  EXPECT_EQ(json, trace_of());
}

TEST(EventTracer, UntracedNetworkExportsEmptyString) {
  Network net(1);
  EXPECT_EQ(net.tracer(), nullptr);
  EXPECT_EQ(net.ExportChromeTrace(), "");
}

TEST(EventTracer, SwitchPauseEdgesTraceOnlyOnChange) {
  Network net(1);
  net.EnableTracing();
  SharedBufferSwitch* sw = net.AddSwitch(2, SwitchConfig{});
  Packet pause;
  pause.type = PacketType::kPause;
  pause.pfc_priority = kDataPriority;
  Packet resume = pause;
  resume.type = PacketType::kResume;

  sw->ReceivePacket(pause, 0);
  sw->ReceivePacket(pause, 0);   // no edge: already paused
  sw->ReceivePacket(resume, 0);
  sw->ReceivePacket(resume, 0);  // no edge: already resumed

  const std::vector<TraceRecord> pfc = [&] {
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : net.tracer()->Snapshot()) {
      if (r.type == TraceEventType::kPauseRx ||
          r.type == TraceEventType::kResumeRx) {
        out.push_back(r);
      }
    }
    return out;
  }();
  ASSERT_EQ(pfc.size(), 2u);
  EXPECT_EQ(pfc[0].type, TraceEventType::kPauseRx);
  EXPECT_EQ(pfc[1].type, TraceEventType::kResumeRx);
  EXPECT_EQ(pfc[0].port, 0);
  EXPECT_EQ(pfc[0].priority, kDataPriority);
}

// -------------------------------------------------------------- registry --

TEST(MetricRegistry, EncodesCanonicalKeys) {
  EXPECT_EQ(EncodeMetricKey("net.drops", MetricLabels{}), "net.drops");
  EXPECT_EQ(EncodeMetricKey("sw.drops", MetricLabels{3, 1, 4, -1}),
            "sw.drops{node=3,port=1,prio=4}");
  EXPECT_EQ(EncodeMetricKey("rate", MetricLabels{-1, -1, -1, 17}),
            "rate{flow=17}");
}

TEST(MetricRegistry, LabelsDistinguishMetrics) {
  MetricRegistry reg;
  int64_t& a = reg.Counter("drops", MetricLabels{1, -1, -1, -1});
  int64_t& b = reg.Counter("drops", MetricLabels{2, -1, -1, -1});
  a += 5;
  b += 9;
  // Same (name, labels) resolves to the same storage.
  EXPECT_EQ(reg.Counter("drops", MetricLabels{1, -1, -1, -1}), 5);
  EXPECT_EQ(reg.Counter("drops", MetricLabels{2, -1, -1, -1}), 9);
  EXPECT_EQ(reg.size(), 2u);

  const RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("drops{node=1}"), 5);
  EXPECT_EQ(snap.counters.at("drops{node=2}"), 9);
}

TEST(MetricRegistry, GaugeMaxKeepsHighWatermark) {
  MetricRegistry reg;
  const MetricLabels q{0, 3, 3, -1};
  reg.GaugeMax("depth", q, 100);
  reg.GaugeMax("depth", q, 700);
  reg.GaugeMax("depth", q, 300);
  EXPECT_EQ(reg.Gauge("depth", q), 700);
}

TEST(MetricRegistry, SnapshotJsonRoundTrips) {
  MetricRegistry reg;
  reg.Counter("net.drops") = 12;
  reg.Counter("sw.ecn_marked", MetricLabels{0, 3, 3, -1}) = 451;
  reg.Gauge("sw.max_queue_depth", MetricLabels{0, 3, 3, -1}) = 123456;
  for (double v : {1.0, 2.0, 2.5, 9.75}) {
    reg.Observe("goodput", MetricLabels{-1, -1, -1, 2}, v);
  }
  const RegistrySnapshot snap = reg.Snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_EQ(snap.histograms.at("goodput{flow=2}").count, 4u);

  RegistrySnapshot parsed;
  ASSERT_TRUE(RegistrySnapshot::FromJson(snap.ToJson(), &parsed));
  EXPECT_EQ(parsed, snap);
  // And the parsed snapshot serializes to the same bytes.
  EXPECT_EQ(parsed.ToJson(), snap.ToJson());
}

TEST(MetricRegistry, FromJsonRejectsMalformedInput) {
  RegistrySnapshot out;
  EXPECT_FALSE(RegistrySnapshot::FromJson("", &out));
  EXPECT_FALSE(RegistrySnapshot::FromJson("{", &out));
  EXPECT_FALSE(RegistrySnapshot::FromJson("[]", &out));
  EXPECT_FALSE(RegistrySnapshot::FromJson(
      "{\"counters\":{},\"gauges\":{},\"histograms\":{}}trailing", &out));
  // The empty schema parses.
  EXPECT_TRUE(RegistrySnapshot::FromJson(
      "{\"counters\":{},\"gauges\":{},\"histograms\":{}}", &out));
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------- probes --

TEST(ProbeSet, RateProbeConvertsDeltasToGbps) {
  EventQueue eq;
  // Cumulative byte counter advancing 125000 bytes per ms == 1 Gbps.
  Bytes delivered = 0;
  eq.ScheduleIn(0, [&] {});  // anchor t=0
  telemetry::ProbeSet probes(&eq, Milliseconds(1));
  const size_t idx = probes.AddRate("goodput", [&] { return delivered; });
  probes.Start();
  // Advance in 1 ms steps, bumping the counter between samples.
  for (int step = 0; step < 10; ++step) {
    eq.RunUntil((step + 1) * Milliseconds(1));
    delivered += 125000;
  }
  const TimeSeries& series = probes.Series(idx);
  ASSERT_GE(series.points.size(), 5u);
  EXPECT_NEAR(probes.MeanOver(idx, Milliseconds(2), Milliseconds(10)), 1.0,
              1e-9);
}

TEST(ProbeSet, GaugeProbeSamplesAndExports) {
  EventQueue eq;
  double level = 0;
  telemetry::ProbeSet probes(&eq, Microseconds(100));
  probes.AddGauge("queue", [&] { return level; },
                  MetricLabels{0, 3, 3, -1});
  probes.Start();
  for (int step = 0; step < 8; ++step) {
    level = 100.0 * step;
    eq.RunUntil((step + 1) * Microseconds(100));
  }
  MetricRegistry reg;
  probes.ExportTo(&reg, /*from=*/Microseconds(400));
  const RegistrySnapshot snap = reg.Snapshot();
  const Summary& s = snap.histograms.at("queue{node=0,port=3,prio=3}");
  // Samples at 400..800 us (level set before each tick: 300..700).
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.max, 700.0);
}

// --------------------------------------------------------------- collect --

TEST(CollectNetworkMetrics, MatchesNetworkAggregatesAndSwitchCounters) {
  Network net(13);
  StarTopology topo;
  BuildIncast(net, &topo);
  net.RunFor(Microseconds(500));

  MetricRegistry reg;
  telemetry::CollectNetworkMetrics(net, &reg);
  const RegistrySnapshot snap = reg.Snapshot();

  EXPECT_EQ(snap.counters.at("net.cnps_sent"), net.TotalCnpsSent());
  EXPECT_EQ(snap.counters.at("net.drops"), net.TotalDrops());
  EXPECT_EQ(snap.counters.at("net.naks"), net.TotalNaks());
  EXPECT_EQ(snap.counters.at("net.pause_frames_sent"),
            net.TotalPauseFramesSent());

  // Per-(port, priority) ECN marks sum to the switch-global counter, and
  // the registry rows agree with the switch accessors.
  const SharedBufferSwitch* sw = topo.sw;
  int64_t marks_sum = 0;
  Bytes deepest = 0;
  for (int port = 0; port < sw->num_ports(); ++port) {
    for (int prio = 0; prio < kNumPriorities; ++prio) {
      marks_sum += sw->EcnMarked(port, prio);
      deepest = std::max(deepest, sw->MaxQueueDepth(port, prio));
    }
  }
  EXPECT_EQ(marks_sum, sw->counters().ecn_marked_packets);
  EXPECT_GT(marks_sum, 0);  // the incast must have marked something
  EXPECT_GT(deepest, 0);
  const std::string sw_key = "{node=" + std::to_string(sw->id()) + "}";
  EXPECT_EQ(snap.counters.at("sw.ecn_marked_packets" + sw_key), marks_sum);

  // The bottleneck queue's high-watermark made it into the registry.
  const std::string depth_key =
      "sw.max_queue_depth{node=" + std::to_string(sw->id()) + ",port=3,prio=" +
      std::to_string(kDataPriority) + "}";
  EXPECT_EQ(snap.gauges.at(depth_key),
            sw->MaxQueueDepth(3, kDataPriority));
}

// ---------------------------------------------------- runner integration --

runner::TrialSpec TracedIncastTrial(int trial, const std::string& dir) {
  runner::TrialSpec spec;
  spec.name = "traced_t" + std::to_string(trial);
  spec.trace_path = dir + "/" + spec.name + ".json";
  spec.run = [](const runner::TrialContext& ctx) {
    Network net(ctx.seed);
    if (ctx.trace) net.EnableTracing(ctx.trace_capacity);
    StarTopology topo;
    BuildIncast(net, &topo);
    net.RunFor(Microseconds(300));

    runner::TrialResult r;
    r.counters["cnps"] = net.TotalCnpsSent();
    if (ctx.trace) {
      r.trace_json = net.ExportChromeTrace();
      MetricRegistry reg;
      telemetry::CollectNetworkMetrics(net, &reg);
      r.registry = reg.Snapshot();
    }
    return r;
  };
  return spec;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(RunnerTrace, TraceBytesIndependentOfJobs) {
  const std::string dir1 = ::testing::TempDir() + "telemetry_j1";
  const std::string dir8 = ::testing::TempDir() + "telemetry_j8";
  for (const std::string& d : {dir1, dir8}) {
    std::string cmd = "mkdir -p " + d;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  auto build = [](const std::string& dir) {
    std::vector<runner::TrialSpec> matrix;
    for (int t = 0; t < 6; ++t) matrix.push_back(TracedIncastTrial(t, dir));
    return matrix;
  };

  runner::RunnerOptions o1;
  o1.jobs = 1;
  o1.base_seed = 42;
  runner::RunnerOptions o8 = o1;
  o8.jobs = 8;

  const std::vector<runner::TrialSpec> m1 = build(dir1);
  const std::vector<runner::TrialSpec> m8 = build(dir8);
  const std::vector<runner::TrialResult> r1 = runner::RunTrials(m1, o1);
  const std::vector<runner::TrialResult> r8 = runner::RunTrials(m8, o8);

  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    // In-memory traces match byte-for-byte...
    EXPECT_FALSE(r1[i].trace_json.empty());
    EXPECT_EQ(r1[i].trace_json, r8[i].trace_json) << m1[i].name;
    // ...and so do the snapshots and the files the runner wrote.
    EXPECT_FALSE(r1[i].registry.empty());
    EXPECT_EQ(r1[i].registry, r8[i].registry) << m1[i].name;
    EXPECT_EQ(ReadWholeFile(m1[i].trace_path), r1[i].trace_json);
    EXPECT_EQ(ReadWholeFile(m8[i].trace_path), r8[i].trace_json);
    // The trace carries the event classes the figures need.
    EXPECT_NE(r1[i].trace_json.find("\"name\":\"q p"), std::string::npos);
    EXPECT_NE(r1[i].trace_json.find("CNP"), std::string::npos);
    EXPECT_NE(r1[i].trace_json.find("rate_gbps"), std::string::npos);
  }

  // Results JSON embeds the registry (but never the trace itself), and
  // still parses round-trip through the snapshot schema.
  const std::string json = runner::ResultsToJson(r1);
  EXPECT_NE(json.find("\"registry\":{"), std::string::npos);
  EXPECT_EQ(json.find("traceEvents"), std::string::npos);
}

TEST(RunnerTrace, UntracedTrialsCarryNoRegistryKey) {
  runner::TrialSpec spec;
  spec.name = "plain";
  spec.run = [](const runner::TrialContext& ctx) {
    EXPECT_FALSE(ctx.trace);
    runner::TrialResult r;
    r.counters["x"] = 1;
    return r;
  };
  runner::RunnerOptions opt;
  const std::vector<runner::TrialResult> res = runner::RunTrials({spec}, opt);
  const std::string json = runner::ResultsToJson(res);
  EXPECT_EQ(json.find("\"registry\""), std::string::npos);
  EXPECT_EQ(json.find("\"faults\""), std::string::npos);
}

TEST(RunnerTrace, TracePathForSanitizesNames) {
  EXPECT_EQ(runner::TracePathFor("out/tr", "storm_8ms/dcqcn"),
            "out/tr_storm_8ms_dcqcn.json");
  EXPECT_EQ(runner::TracePathFor("p", "a b:c"), "p_a_b_c.json");
}

}  // namespace
}  // namespace dcqcn
