// TIMELY extension tests: the RTT-gradient engine in isolation, and the
// end-to-end transport over the simulated fabric.
#include "core/timely.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "stats/monitor.h"

namespace dcqcn {
namespace {

TimelyParams Params() { return TimelyParams{}; }

TEST(TimelyEngine, LowRttIncreasesRate) {
  TimelyState t(Params(), Gbps(40));
  // Drag the rate down first so there is room to grow.
  for (int i = 0; i < 50; ++i) t.OnRttSample(Microseconds(300));
  const Rate low = t.rate();
  ASSERT_LT(low, Gbps(40));
  for (int i = 0; i < 50; ++i) t.OnRttSample(Microseconds(5));
  EXPECT_GT(t.rate(), low);
}

TEST(TimelyEngine, HighRttDecreasesRate) {
  TimelyState t(Params(), Gbps(40));
  for (int i = 0; i < 20; ++i) t.OnRttSample(Microseconds(500));
  EXPECT_LT(t.rate(), Gbps(40));
}

TEST(TimelyEngine, RateStaysWithinBounds) {
  TimelyParams p = Params();
  TimelyState t(p, Gbps(40));
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    t.OnRttSample(Microseconds(rng.UniformInt(2, 1000)));
    EXPECT_GE(t.rate(), p.min_rate);
    EXPECT_LE(t.rate(), Gbps(40));
  }
}

TEST(TimelyEngine, PositiveGradientInBandDecreases) {
  TimelyState t(Params(), Gbps(40));
  // RTTs inside [t_low, t_high] but rising: gradient positive -> decrease.
  Time rtt = Microseconds(30);
  for (int i = 0; i < 30; ++i) {
    t.OnRttSample(rtt);
    rtt += Microseconds(2);
    if (rtt > Microseconds(90)) rtt = Microseconds(90);
  }
  EXPECT_LT(t.rate(), Gbps(40));
}

TEST(TimelyEngine, FlatRttInBandIncreases) {
  TimelyState t(Params(), Gbps(40));
  for (int i = 0; i < 20; ++i) t.OnRttSample(Microseconds(400));
  const Rate low = t.rate();
  // Steady in-band RTT: gradient ~0 -> additive increase.
  for (int i = 0; i < 100; ++i) t.OnRttSample(Microseconds(50));
  EXPECT_GT(t.rate(), low);
}

TEST(Timely, TwoFlowsShareABottleneck) {
  TopologyOptions opt;
  opt.switch_config.red.enabled = false;  // delay-based: no ECN needed
  Network net(8);
  StarTopology topo = BuildStar(net, 3, opt);
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[2]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kTimely;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(40));
  Bytes b[2];
  for (int i = 0; i < 2; ++i) {
    b[i] = topo.hosts[2]->ReceiverDeliveredBytes(i);
  }
  net.RunFor(Milliseconds(20));
  double r[2];
  for (int i = 0; i < 2; ++i) {
    r[i] = static_cast<double>(topo.hosts[2]->ReceiverDeliveredBytes(i) -
                               b[i]);
  }
  EXPECT_GT((r[0] + r[1]) * 8 / 20e-3, 0.7 * Gbps(40));
  // Both flows make progress, but TIMELY has NO unique fixed point — the
  // rate split depends on history (proved in the authors' follow-up "ECN
  // or Delay: Lessons Learnt from Analysis of DCQCN and TIMELY",
  // CoNEXT'16) — so we deliberately do not assert a fair split here, only
  // that neither flow is starved outright.
  EXPECT_GT(r[0] / (r[0] + r[1]), 0.03);
  EXPECT_GT(r[1] / (r[0] + r[1]), 0.03);
  // RTT samples actually flowed.
  EXPECT_GT(topo.hosts[0]->FindQp(0)->timely()->samples(), 50);
}

TEST(Timely, KeepsQueueBelowPfcWithoutEcn) {
  // Delay-based control holds the queue around the T_low/T_high band
  // without any switch support (no RED, no QCN).
  TopologyOptions opt;
  opt.switch_config.red.enabled = false;
  Network net(9);
  StarTopology topo = BuildStar(net, 5, opt);
  for (int i = 0; i < 4; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[4]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kTimely;
    net.StartFlow(f);
  }
  QueueMonitor mon(&net.eq(), Microseconds(20), [&] {
    return topo.sw->EgressQueueBytes(4, kDataPriority);
  });
  mon.Start();
  net.RunFor(Milliseconds(40));
  const Cdf q = mon.ToCdf(Milliseconds(10));
  // t_high = 100 us of queueing at 40G = 500 KB; stay well under that and
  // far from the multi-MB PFC region.
  EXPECT_LT(q.Quantile(0.9), 700e3);
  EXPECT_GT(q.Quantile(1.0), 0.0);  // the queue does get used
}

}  // namespace
}  // namespace dcqcn
