// Golden-trace regression: a small 2-flow + 1-switch DCQCN scenario at a
// fixed seed, with exact switch counters, delivered bytes, and final rates
// pinned. Any change to event ordering, the RNG stream layout, packet
// accounting, or the RP/NP state machines trips this test *explicitly*
// instead of silently shifting every figure in EXPERIMENTS.md.
//
// If a change is *intended* to alter simulation behaviour, re-derive the
// constants (run the scenario, copy the new values) and say so in the
// commit message — that is the point of the pin.
#include <gtest/gtest.h>

#include "cc/scenarios.h"
#include "net/topology.h"

namespace dcqcn {
namespace {

struct GoldenRun {
  SwitchCounters sw;
  Bytes delivered[2];
  Rate rate_bps[2];
  int64_t cnps[2];
  int64_t pkts_sent[2];
  Bytes cwnd[2];
  double dctcp_alpha[2];
};

GoldenRun RunScenario(uint64_t seed,
                      TransportMode mode = TransportMode::kRdmaDcqcn) {
  Network net(seed);
  TopologyOptions opt;
  cc::ApplyCcSwitchDefaults(mode, &opt.switch_config);
  StarTopology topo = BuildStar(net, 3, opt);
  for (int i = 0; i < 2; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[2]->id();
    f.size_bytes = 0;  // greedy
    f.mode = mode;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(2));

  GoldenRun g;
  g.sw = topo.sw->counters();
  for (int i = 0; i < 2; ++i) {
    g.delivered[i] = topo.hosts[2]->ReceiverDeliveredBytes(i);
    const SenderQp* qp = topo.hosts[static_cast<size_t>(i)]->FindQp(i);
    g.rate_bps[i] = qp->current_rate();
    g.cnps[i] = qp->counters().cnps_received;
    g.pkts_sent[i] = qp->counters().packets_sent;
    g.cwnd[i] = qp->cwnd();
    g.dctcp_alpha[i] = qp->dctcp_alpha();
  }
  return g;
}

TEST(GoldenTrace, TwoFlowDcqcnIncastAtSeed42) {
  const GoldenRun g = RunScenario(42);

  // Switch counters after 2 ms of a 2:1 greedy DCQCN incast, seed 42.
  EXPECT_EQ(g.sw.rx_packets, 4700);
  EXPECT_EQ(g.sw.tx_packets, 4700);
  EXPECT_EQ(g.sw.dropped_packets, 0);
  EXPECT_EQ(g.sw.ecn_marked_packets, 594);
  EXPECT_EQ(g.sw.pause_frames_sent, 0);
  EXPECT_EQ(g.sw.resume_frames_sent, 0);
  EXPECT_EQ(g.sw.pause_frames_received, 0);

  EXPECT_EQ(g.delivered[0], 1633000);
  EXPECT_EQ(g.delivered[1], 2915000);
  EXPECT_EQ(g.cnps[0], 4);
  EXPECT_EQ(g.cnps[1], 3);
  EXPECT_EQ(g.pkts_sent[0], 1635);
  EXPECT_EQ(g.pkts_sent[1], 2918);

  // Final rate-limiter settings are exact doubles: the RP update chain is
  // pure floating-point arithmetic from pinned inputs.
  EXPECT_DOUBLE_EQ(g.rate_bps[0], 6119999999.7834673);
  EXPECT_DOUBLE_EQ(g.rate_bps[1], 11119999999.49243);
}

// Per-policy pins on the same 2-flow star: captured before the CcPolicy
// refactor, these freeze each algorithm's state machine independently of
// the differential fingerprints (which hash whole traces — these give a
// readable first diff when something drifts).
TEST(GoldenTrace, TwoFlowDctcpIncastAtSeed42) {
  const GoldenRun g = RunScenario(42, TransportMode::kDctcp);

  EXPECT_EQ(g.sw.rx_packets, 20113);
  EXPECT_EQ(g.sw.tx_packets, 19973);
  EXPECT_EQ(g.sw.dropped_packets, 0);
  EXPECT_EQ(g.sw.ecn_marked_packets, 1935);
  EXPECT_EQ(g.sw.qcn_feedback_sent, 0);

  EXPECT_EQ(g.delivered[0], 4380000);
  EXPECT_EQ(g.delivered[1], 5606000);
  EXPECT_EQ(g.cnps[0], 0);  // DCTCP echoes marks in ACKs, never CNPs.
  EXPECT_EQ(g.cnps[1], 0);
  EXPECT_EQ(g.pkts_sent[0], 4460);
  EXPECT_EQ(g.pkts_sent[1], 5678);

  // Window-based: the rate limiter stays at line rate; cwnd and the DCTCP
  // alpha EWMA carry the control state.
  EXPECT_DOUBLE_EQ(g.rate_bps[0], 40000000000.0);
  EXPECT_DOUBLE_EQ(g.rate_bps[1], 40000000000.0);
  EXPECT_EQ(g.cwnd[0], 81652);
  EXPECT_EQ(g.cwnd[1], 81849);
  EXPECT_DOUBLE_EQ(g.dctcp_alpha[0], 0.014351005605689695);
  EXPECT_DOUBLE_EQ(g.dctcp_alpha[1], 0.013673756934668621);
}

TEST(GoldenTrace, TwoFlowTimelyIncastAtSeed42) {
  const GoldenRun g = RunScenario(42, TransportMode::kTimely);

  // TIMELY runs with RED/ECN disabled — it reacts to RTT gradients only.
  EXPECT_EQ(g.sw.rx_packets, 1119);
  EXPECT_EQ(g.sw.tx_packets, 1119);
  EXPECT_EQ(g.sw.dropped_packets, 0);
  EXPECT_EQ(g.sw.ecn_marked_packets, 0);
  EXPECT_EQ(g.sw.qcn_feedback_sent, 0);

  EXPECT_EQ(g.delivered[0], 544000);
  EXPECT_EQ(g.delivered[1], 541000);
  EXPECT_EQ(g.cnps[0], 0);
  EXPECT_EQ(g.cnps[1], 0);
  EXPECT_EQ(g.pkts_sent[0], 545);
  EXPECT_EQ(g.pkts_sent[1], 541);

  EXPECT_DOUBLE_EQ(g.rate_bps[0], 1944030037.7152839);
  EXPECT_DOUBLE_EQ(g.rate_bps[1], 1741645420.2643888);
}

TEST(GoldenTrace, TwoFlowQcnIncastAtSeed42) {
  const GoldenRun g = RunScenario(42, TransportMode::kQcn);

  // QCN runs with RED off and the switch-side CP sampler on: feedback
  // arrives as quantized congestion messages, counted like CNPs at the RP.
  EXPECT_EQ(g.sw.rx_packets, 6694);
  EXPECT_EQ(g.sw.tx_packets, 6701);
  EXPECT_EQ(g.sw.dropped_packets, 0);
  EXPECT_EQ(g.sw.ecn_marked_packets, 0);
  EXPECT_EQ(g.sw.qcn_feedback_sent, 7);

  EXPECT_EQ(g.delivered[0], 4127000);
  EXPECT_EQ(g.delivered[1], 2363000);
  EXPECT_EQ(g.cnps[0], 3);
  EXPECT_EQ(g.cnps[1], 4);
  EXPECT_EQ(g.pkts_sent[0], 4131);
  EXPECT_EQ(g.pkts_sent[1], 2365);

  EXPECT_DOUBLE_EQ(g.rate_bps[0], 16433720702.322058);
  EXPECT_DOUBLE_EQ(g.rate_bps[1], 8856498794.676384);
}

TEST(GoldenTrace, RepeatedRunsAreBitIdentical) {
  const GoldenRun a = RunScenario(42);
  const GoldenRun b = RunScenario(42);
  EXPECT_EQ(a.sw.rx_packets, b.sw.rx_packets);
  EXPECT_EQ(a.sw.ecn_marked_packets, b.sw.ecn_marked_packets);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(a.delivered[i], b.delivered[i]);
    EXPECT_EQ(a.rate_bps[i], b.rate_bps[i]);  // exact, not approximate
    EXPECT_EQ(a.cnps[i], b.cnps[i]);
  }
}

TEST(GoldenTrace, DifferentSeedDiverges) {
  // Sanity check that the pin is actually sensitive to the RNG stream:
  // NIC timer jitter draws differ under another seed.
  const GoldenRun a = RunScenario(42);
  const GoldenRun b = RunScenario(43);
  EXPECT_TRUE(a.delivered[0] != b.delivered[0] ||
              a.delivered[1] != b.delivered[1] ||
              a.rate_bps[0] != b.rate_bps[0] ||
              a.rate_bps[1] != b.rate_bps[1]);
}

}  // namespace
}  // namespace dcqcn
