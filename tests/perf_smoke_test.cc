// Smoke variants of the engine microbenchmarks (ctest label: perf).
//
// These run the exact loops BM_EventQueueScheduleRun, BM_EventQueueCancel,
// BM_SwitchHotPath and BM_SimulatedIncastMillisecond time — shrunk to unit
// test size and with correctness assertions instead of timers — so the
// ASan/UBSan/TSan CI flavors sweep the allocation-free event core's hottest
// paths on every run. The wall-clock gating lives in CI's perf-smoke step
// (perf_microbench vs the BENCH_PR4.json baseline); these tests gate
// memory-safety of the same code.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/topology.h"
#include "sim/event_queue.h"

namespace dcqcn {
namespace {

TEST(PerfSmoke, EventQueueScheduleRunLoop) {
  // BM_EventQueueScheduleRun's loop body, iterated enough to churn slots
  // through the free list many times over.
  EventQueue eq;
  int64_t sink = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    for (int i = 0; i < 64; ++i) {
      eq.ScheduleIn(static_cast<Time>(i % 7), [&sink] { ++sink; });
    }
    eq.RunAll();
  }
  EXPECT_EQ(sink, 2000 * 64);
  EXPECT_TRUE(eq.Empty());
}

TEST(PerfSmoke, EventQueueCancelLoop) {
  // BM_EventQueueCancel's loop body: arm, cancel, drain tombstones.
  EventQueue eq;
  for (int iter = 0; iter < 20000; ++iter) {
    EventHandle h = eq.ScheduleIn(1000, [] { FAIL() << "cancelled ran"; });
    EXPECT_TRUE(eq.Cancel(h));
    eq.RunAll();
  }
  EXPECT_TRUE(eq.Empty());
  EXPECT_EQ(eq.Now(), 0);
}

TEST(PerfSmoke, SwitchHotPathMillisecond) {
  // BM_SwitchHotPath/0: one simulated millisecond of an 8:1 DCQCN incast —
  // the pooled egress/PFC rings, the link in-flight rings, and the NIC
  // timer churn all under load.
  const int k = 8;
  Network net(1);
  StarTopology topo = BuildStar(net, k + 1, TopologyOptions{});
  for (int i = 0; i < k; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[static_cast<size_t>(k)]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kRdmaDcqcn;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(1));
  int64_t delivered = 0;
  for (int i = 0; i < k; ++i) {
    delivered += net.hosts().back()->ReceiverDeliveredBytes(i);
  }
  EXPECT_GT(delivered, 0);
  // The receiver's access link bounds a millisecond of goodput.
  EXPECT_LE(delivered, static_cast<int64_t>(40e9 / 8 * 1e-3 * 1.01));
}

TEST(PerfSmoke, IncastMillisecondSmallFanIn) {
  // BM_SimulatedIncastMillisecond/2 shape; checks the engine is quiescent-
  // clean for a smaller fan-in too (different ring/slot high-water marks).
  const int k = 2;
  Network net(1);
  StarTopology topo = BuildStar(net, k + 1, TopologyOptions{});
  for (int i = 0; i < k; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[static_cast<size_t>(k)]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kRdmaDcqcn;
    net.StartFlow(f);
  }
  net.RunFor(Milliseconds(1));
  EXPECT_GT(net.hosts().back()->counters().data_packets_received, 0);
}

}  // namespace
}  // namespace dcqcn
