// Differential conformance: the pre-refactor behaviour of all four
// congestion-control algorithms on the fig08 / fig09 / victim / incast
// scenarios, pinned as trace fingerprints. These constants were captured
// from the pre-CcPolicy code (direct RpState/TimelyState/DCTCP branches in
// SenderQp) and assert that the CcPolicy implementations reproduce that
// behaviour byte-for-byte — and that no later change drifts it silently.
//
// On an *intended* behaviour change, re-pin with:
//   ./build/bench/regen_cc_goldens        (paste the first block over kPins)
// and diff the offending pair's full trace via
//   ./build/bench/regen_cc_goldens --trace <scenario> <policy>
#include <gtest/gtest.h>

#include <string>

#include "cc/scenarios.h"

namespace dcqcn {
namespace {

struct Pin {
  const char* scenario;
  const char* policy;
  uint64_t fingerprint;
  size_t trace_bytes;
};

// Captured at seed 42 from the pre-refactor state machines.
constexpr Pin kPins[] = {
    {"fig08", "dcqcn", 0x6ba2237d4b62fea7ull, 2521},
    {"fig08", "dctcp", 0x0660f0ccc0e3e274ull, 3019},
    {"fig08", "timely", 0xf9b14f6780829462ull, 2635},
    {"fig08", "qcn", 0x03aaa36a70868a04ull, 2664},
    {"fig09", "dcqcn", 0x33e06351c0fe8df4ull, 2432},
    {"fig09", "dctcp", 0xb1c20603975500fdull, 2898},
    {"fig09", "timely", 0xf80d41ce5f2a83a2ull, 2517},
    {"fig09", "qcn", 0xe26bc93c16c51fc1ull, 2553},
    {"victim", "dcqcn", 0x4fd8bc9d3e86f343ull, 3385},
    {"victim", "dctcp", 0x19b0a5c9aaf5c9dbull, 4091},
    {"victim", "timely", 0x0766a96a7f0a0f6dull, 3256},
    {"victim", "qcn", 0x8843d558402c7333ull, 3506},
    {"incast", "dcqcn", 0x27c8f649748c2351ull, 3874},
    {"incast", "dctcp", 0x1ab713a7f735843cull, 4601},
    {"incast", "timely", 0xd0deff71c9bd303bull, 3702},
    {"incast", "qcn", 0xa119dde0cca2e074ull, 4019},
};

TransportMode ModeOf(const std::string& policy) {
  if (policy == "dctcp") return TransportMode::kDctcp;
  if (policy == "timely") return TransportMode::kTimely;
  if (policy == "qcn") return TransportMode::kQcn;
  return TransportMode::kRdmaDcqcn;
}

class CcDifferential : public ::testing::TestWithParam<Pin> {};

TEST_P(CcDifferential, MatchesPreRefactorTrace) {
  const Pin& pin = GetParam();
  const std::string trace =
      cc::RunScenarioTrace(pin.scenario, ModeOf(pin.policy), 42);
  EXPECT_EQ(trace.size(), pin.trace_bytes)
      << "trace for " << pin.scenario << "/" << pin.policy
      << " changed length; full trace:\n"
      << trace;
  EXPECT_EQ(cc::TraceFingerprint(trace), pin.fingerprint)
      << "behaviour drifted for " << pin.scenario << "/" << pin.policy
      << "; diff against `regen_cc_goldens --trace " << pin.scenario << " "
      << pin.policy << "`. Current trace:\n"
      << trace;
}

// The harness itself must be replay-deterministic, or the pins above would
// be meaningless.
TEST(CcDifferential, TraceIsReplayStable) {
  const std::string a =
      cc::RunScenarioTrace("incast", TransportMode::kRdmaDcqcn, 7);
  const std::string b =
      cc::RunScenarioTrace("incast", TransportMode::kRdmaDcqcn, 7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, cc::RunScenarioTrace("incast", TransportMode::kRdmaDcqcn, 8));
}

// Sanity: the four algorithms genuinely behave differently on every pinned
// scenario (a digest that collapsed them would prove nothing).
TEST(CcDifferential, PoliciesDivergeOnEveryScenario) {
  for (const std::string& s : cc::ConformanceScenarios()) {
    const uint64_t dcqcn = cc::TraceFingerprint(
        cc::RunScenarioTrace(s, TransportMode::kRdmaDcqcn, 42));
    const uint64_t dctcp = cc::TraceFingerprint(
        cc::RunScenarioTrace(s, TransportMode::kDctcp, 42));
    const uint64_t timely = cc::TraceFingerprint(
        cc::RunScenarioTrace(s, TransportMode::kTimely, 42));
    const uint64_t qcn = cc::TraceFingerprint(
        cc::RunScenarioTrace(s, TransportMode::kQcn, 42));
    EXPECT_NE(dcqcn, dctcp) << s;
    EXPECT_NE(dcqcn, timely) << s;
    EXPECT_NE(dcqcn, qcn) << s;
    EXPECT_NE(dctcp, timely) << s;
    EXPECT_NE(dctcp, qcn) << s;
    EXPECT_NE(timely, qcn) << s;
  }
}

std::string PinName(const ::testing::TestParamInfo<Pin>& info) {
  return std::string(info.param.scenario) + "_" + info.param.policy;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, CcDifferential,
                         ::testing::ValuesIn(kPins), PinName);

}  // namespace
}  // namespace dcqcn
