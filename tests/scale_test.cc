// Determinism regression for the large-Clos scaling bench (bench/ext_scale):
// the full ScaleCases matrix — smoke durations, same shapes up to 32 ToRs /
// 512 hosts — run in-process through the experiment runner must serialize to
// byte-identical JSON at jobs=1 and jobs=8. This is the guarantee that lets
// ext_scale's --json output gate CI regardless of --jobs: every serialized
// number (events, delivered bytes, CNPs, goodput) is a pure function of
// {matrix, seed}, never of thread interleaving. Wall-clock stays in the
// side table and must not leak into the results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common.h"
#include "runner/runner.h"
#include "runner/serialize.h"

namespace dcqcn {
namespace {

std::string RunMatrixToJson(int jobs, uint64_t seed) {
  const std::vector<bench::ScaleCase> cases = bench::ScaleCases(/*smoke=*/true);
  std::vector<double> wall_seconds(cases.size(), 0.0);
  std::vector<runner::TrialSpec> matrix;
  matrix.reserve(cases.size());
  for (const bench::ScaleCase& c : cases) {
    matrix.push_back(bench::ScaleTrial(c, &wall_seconds));
  }
  runner::RunnerOptions opt;
  opt.jobs = jobs;
  opt.base_seed = seed;
  const std::vector<runner::TrialResult> results =
      runner::RunTrials(matrix, opt);
  // Every trial must have recorded its wall time in the side table — and
  // nowhere else (TrialResult carries no wall-clock key; serialization below
  // being jobs-invariant depends on that).
  for (const double w : wall_seconds) EXPECT_GT(w, 0.0);
  return runner::ResultsToJson(results);
}

TEST(ScaleMatrix, SerialAndParallelRunsAreByteIdentical) {
  const std::string serial = RunMatrixToJson(/*jobs=*/1, /*seed=*/7);
  const std::string parallel = RunMatrixToJson(/*jobs=*/8, /*seed=*/7);
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
  // Wall-clock must never appear in serialized output.
  EXPECT_EQ(serial.find("wall"), std::string::npos);
}

TEST(ScaleMatrix, CasesCoverTheScaleTargets) {
  const std::vector<bench::ScaleCase> cases = bench::ScaleCases(/*smoke=*/true);
  ASSERT_FALSE(cases.empty());
  // The paper's testbed shape leads the sweep...
  EXPECT_EQ(cases.front().shape.num_tors(), 4);
  EXPECT_EQ(cases.front().shape.num_hosts(), 20);
  // ...and the sweep reaches the PR's scale floor: >= 32 ToRs, >= 512
  // hosts, >= 1000 concurrent flows.
  const bench::ScaleCase& xl = cases.back();
  EXPECT_GE(xl.shape.num_tors(), 32);
  EXPECT_GE(xl.shape.num_hosts(), 512);
  EXPECT_GE(xl.shape.num_hosts() * xl.flows_per_host, 1000);
}

}  // namespace
}  // namespace dcqcn
