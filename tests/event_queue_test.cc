#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcqcn {
namespace {

TEST(EventQueue, StartsAtZeroAndEmpty) {
  EventQueue eq;
  EXPECT_EQ(eq.Now(), 0);
  EXPECT_TRUE(eq.Empty());
  EXPECT_FALSE(eq.RunOne());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(Nanoseconds(30), [&] { order.push_back(3); });
  eq.ScheduleAt(Nanoseconds(10), [&] { order.push_back(1); });
  eq.ScheduleAt(Nanoseconds(20), [&] { order.push_back(2); });
  eq.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.Now(), Nanoseconds(30));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.ScheduleAt(Nanoseconds(5), [&order, i] { order.push_back(i); });
  }
  eq.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue eq;
  Time fired_at = -1;
  eq.ScheduleAt(Nanoseconds(100), [&] {
    eq.ScheduleIn(Nanoseconds(50), [&] { fired_at = eq.Now(); });
  });
  eq.RunAll();
  EXPECT_EQ(fired_at, Nanoseconds(150));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue eq;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) eq.ScheduleIn(Nanoseconds(1), chain);
  };
  eq.ScheduleIn(0, chain);
  eq.RunAll();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(eq.Now(), Nanoseconds(99));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue eq;
  bool ran = false;
  EventHandle h = eq.ScheduleAt(Nanoseconds(10), [&] { ran = true; });
  EXPECT_TRUE(eq.Cancel(h));
  eq.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue eq;
  EventHandle h = eq.ScheduleAt(Nanoseconds(10), [] {});
  EXPECT_TRUE(eq.Cancel(h));
  EXPECT_FALSE(eq.Cancel(h));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue eq;
  EventHandle h = eq.ScheduleAt(Nanoseconds(10), [] {});
  eq.RunAll();
  EXPECT_FALSE(eq.Cancel(h));
}

TEST(EventQueue, CancelDefaultHandleReturnsFalse) {
  EventQueue eq;
  EXPECT_FALSE(eq.Cancel(EventHandle{}));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue eq;
  int ran = 0;
  eq.ScheduleAt(Nanoseconds(10), [&] { ++ran; });
  eq.ScheduleAt(Nanoseconds(20), [&] { ++ran; });
  eq.ScheduleAt(Nanoseconds(30), [&] { ++ran; });
  EXPECT_EQ(eq.RunUntil(Nanoseconds(20)), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(eq.Now(), Nanoseconds(20));
  // Remaining event still pending.
  EXPECT_EQ(eq.PendingEvents(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenDrained) {
  EventQueue eq;
  eq.RunUntil(Microseconds(5));
  EXPECT_EQ(eq.Now(), Microseconds(5));
}

TEST(EventQueue, PendingEventsTracksCancellations) {
  EventQueue eq;
  EventHandle a = eq.ScheduleAt(1, [] {});
  eq.ScheduleAt(2, [] {});
  EXPECT_EQ(eq.PendingEvents(), 2u);
  eq.Cancel(a);
  EXPECT_EQ(eq.PendingEvents(), 1u);
  EXPECT_FALSE(eq.Empty());
  eq.RunAll();
  EXPECT_TRUE(eq.Empty());
}

TEST(EventQueue, CancelledHeadDoesNotBlockLaterEvents) {
  EventQueue eq;
  bool ran = false;
  EventHandle a = eq.ScheduleAt(1, [] { FAIL() << "cancelled event ran"; });
  eq.ScheduleAt(2, [&] { ran = true; });
  eq.Cancel(a);
  EXPECT_TRUE(eq.RunOne());
  EXPECT_TRUE(ran);
  EXPECT_EQ(eq.Now(), 2);
}

// --- tombstone cancellation under heavy churn ---
// The parallel experiment runner's determinism rests on each trial's private
// EventQueue behaving identically under any schedule/cancel interleaving;
// these tests stress the tombstone path the simple cases never reach.

TEST(EventQueue, HeavyChurnCancelWhilePending) {
  // Schedule thousands of events, cancel every third one (some at the heap
  // top, some buried), and verify exactly the survivors run, in order.
  EventQueue eq;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    // Deterministic scrambled times with many ties.
    const Time at = Nanoseconds((i * 7919) % 257);
    handles.push_back(eq.ScheduleAt(at, [&fired, i] { fired.push_back(i); }));
  }
  int cancelled = 0;
  for (int i = 0; i < kN; i += 3) {
    EXPECT_TRUE(eq.Cancel(handles[static_cast<size_t>(i)]));
    ++cancelled;
  }
  EXPECT_EQ(eq.PendingEvents(), static_cast<size_t>(kN - cancelled));
  EXPECT_EQ(eq.RunAll(), static_cast<uint64_t>(kN - cancelled));
  EXPECT_EQ(fired.size(), static_cast<size_t>(kN - cancelled));
  for (int i : fired) EXPECT_NE(i % 3, 0);
  // Double-cancel after the drain: every handle is now stale.
  for (const EventHandle& h : handles) EXPECT_FALSE(eq.Cancel(h));
}

TEST(EventQueue, CancelFromInsideCallbacks) {
  // Events cancelling later events mid-run: the tombstone must apply even
  // when the target is already at the heap top.
  EventQueue eq;
  int ran = 0;
  std::vector<EventHandle> victims;
  for (int i = 0; i < 100; ++i) {
    victims.push_back(
        eq.ScheduleAt(Nanoseconds(100 + i), [&ran] { ++ran; }));
  }
  eq.ScheduleAt(Nanoseconds(1), [&] {
    for (int i = 0; i < 100; i += 2) {
      EXPECT_TRUE(eq.Cancel(victims[static_cast<size_t>(i)]));
    }
  });
  eq.RunAll();
  EXPECT_EQ(ran, 50);
}

TEST(EventQueue, CancelAfterFireUnderChurnNeverHitsLaterEvents) {
  // Handle "reuse" hazard: a stale handle (its event fired long ago) must
  // stay dead no matter how many new events are scheduled afterwards — ids
  // are never recycled, so the stale cancel can't kill a newcomer.
  EventQueue eq;
  EventHandle stale = eq.ScheduleAt(Nanoseconds(1), [] {});
  EXPECT_TRUE(eq.RunOne());
  for (int round = 0; round < 50; ++round) {
    bool ran = false;
    EventHandle fresh =
        eq.ScheduleAt(eq.Now() + Nanoseconds(1), [&ran] { ran = true; });
    EXPECT_FALSE(eq.Cancel(stale));  // stale forever
    eq.RunAll();
    EXPECT_TRUE(ran);
    stale = fresh;  // fresh has now fired: becomes the next stale handle
    EXPECT_FALSE(eq.Cancel(stale));
  }
}

TEST(EventQueue, RescheduleAfterCancelPattern) {
  // The NIC timer idiom: cancel-then-rearm in a loop, with the cancelled
  // tombstones accumulating ahead of live events at identical timestamps.
  EventQueue eq;
  int fired = 0;
  EventHandle h;
  for (int i = 0; i < 1000; ++i) {
    if (h.valid()) eq.Cancel(h);
    h = eq.ScheduleAt(Nanoseconds(10), [&fired] { ++fired; });
  }
  EXPECT_EQ(eq.PendingEvents(), 1u);
  eq.RunAll();
  EXPECT_EQ(fired, 1);  // only the last armed timer runs
  EXPECT_EQ(eq.Now(), Nanoseconds(10));
}

TEST(EventQueue, CancelEverythingLeavesCleanQueue) {
  EventQueue eq;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 500; ++i) {
    hs.push_back(eq.ScheduleAt(Nanoseconds(i), [] {
      FAIL() << "cancelled event ran";
    }));
  }
  for (const EventHandle& h : hs) EXPECT_TRUE(eq.Cancel(h));
  EXPECT_TRUE(eq.Empty());
  EXPECT_EQ(eq.RunAll(), 0u);
  EXPECT_EQ(eq.Now(), 0);  // nothing ran, clock never moved
  // The queue stays usable after a full tombstone purge.
  bool ran = false;
  eq.ScheduleAt(Nanoseconds(5), [&ran] { ran = true; });
  eq.RunAll();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, ScheduleFromCallbackAtSameTimestamp) {
  // Regression: the old core moved the entry out of priority_queue::top()
  // via const_cast before running it; a callback that scheduled at the same
  // timestamp could push into the heap mid-move. The new core pops first,
  // so scheduling from inside a firing callback — even at Now(), even
  // forcing heap growth — must interleave correctly: events already queued
  // for this timestamp run before the newcomers (FIFO tie-break).
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(Nanoseconds(10), [&] {
    order.push_back(0);
    eq.ScheduleAt(Nanoseconds(10), [&] { order.push_back(2); });
    eq.ScheduleAt(eq.Now(), [&] { order.push_back(3); });
  });
  eq.ScheduleAt(Nanoseconds(10), [&] { order.push_back(1); });
  eq.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(eq.Now(), Nanoseconds(10));
}

TEST(EventQueue, ScheduleBurstFromCallbackForcesHeapGrowth) {
  // Same hazard, growth flavor: a single firing callback schedules far more
  // events than the heap holds, forcing reallocation while the fired entry
  // is live. All of them run, in FIFO order within each timestamp.
  EventQueue eq;
  int fired = 0;
  std::vector<int> same_ts_order;
  eq.ScheduleAt(Nanoseconds(5), [&] {
    for (int i = 0; i < 1000; ++i) {
      eq.ScheduleAt(Nanoseconds(5 + i % 3), [&fired] { ++fired; });
    }
    for (int i = 0; i < 100; ++i) {
      eq.ScheduleAt(Nanoseconds(5), [&same_ts_order, i] {
        same_ts_order.push_back(i);
      });
    }
  });
  eq.RunAll();
  EXPECT_EQ(fired, 1000);
  ASSERT_EQ(same_ts_order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(same_ts_order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, CancelFiredHandleWhoseSlotWasReused) {
  // Slot recycling must not let a stale handle cancel the slot's new
  // occupant: handles carry the armed event's unique sequence number.
  EventQueue eq;
  EventHandle first = eq.ScheduleAt(Nanoseconds(1), [] {});
  eq.RunAll();  // `first` fired; its slot returns to the free list
  bool ran = false;
  eq.ScheduleAt(Nanoseconds(2), [&ran] { ran = true; });  // reuses the slot
  EXPECT_FALSE(eq.Cancel(first));
  eq.RunAll();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, ClockMonotoneAcrossManyRandomEvents) {
  EventQueue eq;
  Time last = -1;
  uint64_t seed = 12345;
  for (int i = 0; i < 1000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    eq.ScheduleAt(static_cast<Time>(seed % 100000), [&] {
      EXPECT_GE(eq.Now(), last);
      last = eq.Now();
    });
  }
  EXPECT_EQ(eq.RunAll(), 1000u);
}

}  // namespace
}  // namespace dcqcn
