#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcqcn {
namespace {

TEST(EventQueue, StartsAtZeroAndEmpty) {
  EventQueue eq;
  EXPECT_EQ(eq.Now(), 0);
  EXPECT_TRUE(eq.Empty());
  EXPECT_FALSE(eq.RunOne());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(Nanoseconds(30), [&] { order.push_back(3); });
  eq.ScheduleAt(Nanoseconds(10), [&] { order.push_back(1); });
  eq.ScheduleAt(Nanoseconds(20), [&] { order.push_back(2); });
  eq.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.Now(), Nanoseconds(30));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.ScheduleAt(Nanoseconds(5), [&order, i] { order.push_back(i); });
  }
  eq.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue eq;
  Time fired_at = -1;
  eq.ScheduleAt(Nanoseconds(100), [&] {
    eq.ScheduleIn(Nanoseconds(50), [&] { fired_at = eq.Now(); });
  });
  eq.RunAll();
  EXPECT_EQ(fired_at, Nanoseconds(150));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue eq;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) eq.ScheduleIn(Nanoseconds(1), chain);
  };
  eq.ScheduleIn(0, chain);
  eq.RunAll();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(eq.Now(), Nanoseconds(99));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue eq;
  bool ran = false;
  EventHandle h = eq.ScheduleAt(Nanoseconds(10), [&] { ran = true; });
  EXPECT_TRUE(eq.Cancel(h));
  eq.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue eq;
  EventHandle h = eq.ScheduleAt(Nanoseconds(10), [] {});
  EXPECT_TRUE(eq.Cancel(h));
  EXPECT_FALSE(eq.Cancel(h));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue eq;
  EventHandle h = eq.ScheduleAt(Nanoseconds(10), [] {});
  eq.RunAll();
  EXPECT_FALSE(eq.Cancel(h));
}

TEST(EventQueue, CancelDefaultHandleReturnsFalse) {
  EventQueue eq;
  EXPECT_FALSE(eq.Cancel(EventHandle{}));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue eq;
  int ran = 0;
  eq.ScheduleAt(Nanoseconds(10), [&] { ++ran; });
  eq.ScheduleAt(Nanoseconds(20), [&] { ++ran; });
  eq.ScheduleAt(Nanoseconds(30), [&] { ++ran; });
  EXPECT_EQ(eq.RunUntil(Nanoseconds(20)), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(eq.Now(), Nanoseconds(20));
  // Remaining event still pending.
  EXPECT_EQ(eq.PendingEvents(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenDrained) {
  EventQueue eq;
  eq.RunUntil(Microseconds(5));
  EXPECT_EQ(eq.Now(), Microseconds(5));
}

TEST(EventQueue, PendingEventsTracksCancellations) {
  EventQueue eq;
  EventHandle a = eq.ScheduleAt(1, [] {});
  eq.ScheduleAt(2, [] {});
  EXPECT_EQ(eq.PendingEvents(), 2u);
  eq.Cancel(a);
  EXPECT_EQ(eq.PendingEvents(), 1u);
  EXPECT_FALSE(eq.Empty());
  eq.RunAll();
  EXPECT_TRUE(eq.Empty());
}

TEST(EventQueue, CancelledHeadDoesNotBlockLaterEvents) {
  EventQueue eq;
  bool ran = false;
  EventHandle a = eq.ScheduleAt(1, [] { FAIL() << "cancelled event ran"; });
  eq.ScheduleAt(2, [&] { ran = true; });
  eq.Cancel(a);
  EXPECT_TRUE(eq.RunOne());
  EXPECT_TRUE(ran);
  EXPECT_EQ(eq.Now(), 2);
}

TEST(EventQueue, ClockMonotoneAcrossManyRandomEvents) {
  EventQueue eq;
  Time last = -1;
  uint64_t seed = 12345;
  for (int i = 0; i < 1000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    eq.ScheduleAt(static_cast<Time>(seed % 100000), [&] {
      EXPECT_GE(eq.Now(), last);
      last = eq.Now();
    });
  }
  EXPECT_EQ(eq.RunAll(), 1000u);
}

}  // namespace
}  // namespace dcqcn
