#include "common/units.h"

#include <gtest/gtest.h>

namespace dcqcn {
namespace {

TEST(Units, TimeConstants) {
  EXPECT_EQ(Nanoseconds(1), 1000);
  EXPECT_EQ(Microseconds(1), 1000 * 1000);
  EXPECT_EQ(Milliseconds(1), Microseconds(1000));
  EXPECT_EQ(Seconds(1), Milliseconds(1000));
}

TEST(Units, ToSeconds) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(50)), 50.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(7)), 7.0);
}

TEST(Units, TransmissionTimeExactAt40G) {
  // One byte at 40 Gbps is exactly 200 ps; a 1000 B MTU is exactly 200 ns.
  EXPECT_EQ(TransmissionTime(1, Gbps(40)), 200);
  EXPECT_EQ(TransmissionTime(1000, Gbps(40)), Nanoseconds(200));
}

TEST(Units, TransmissionTimeOtherRates) {
  EXPECT_EQ(TransmissionTime(1000, Gbps(10)), Nanoseconds(800));
  EXPECT_EQ(TransmissionTime(1500, Gbps(1)), Microseconds(12));
}

TEST(Units, TransmissionTimeRoundsUpNotDown) {
  // 3 bytes at 7 Gbps = 24/7 ns = 3428.57... ps -> must round to >= actual.
  const Time t = TransmissionTime(3, Gbps(7));
  EXPECT_GE(static_cast<double>(t) * 7e9 / (8.0 * 1e12), 2.999);
}

TEST(Units, BytesInTimeInvertsTransmissionTime) {
  for (Bytes b : {1000, 64, 9000, 1500}) {
    const Time t = TransmissionTime(b, Gbps(40));
    EXPECT_NEAR(static_cast<double>(BytesInTime(t, Gbps(40))),
                static_cast<double>(b), 1.0);
  }
}

TEST(Units, RateHelpers) {
  EXPECT_DOUBLE_EQ(Gbps(40), 40e9);
  EXPECT_DOUBLE_EQ(Mbps(40), 40e6);
  EXPECT_DOUBLE_EQ(ToGbps(Gbps(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(ToMbps(Mbps(3)), 3.0);
}

TEST(Units, ZeroBytesZeroTime) {
  EXPECT_EQ(TransmissionTime(0, Gbps(40)), 0);
  EXPECT_EQ(BytesInTime(0, Gbps(40)), 0);
}

}  // namespace
}  // namespace dcqcn
