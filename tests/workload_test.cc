// Benchmark-traffic generator tests (§6.2 workload) and the monitor
// utilities, exercised over the real Clos testbed topology.
#include "workload/pairs.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "stats/monitor.h"

namespace dcqcn {
namespace {

std::vector<RdmaNic*> AllHosts(const ClosTopology& t) {
  std::vector<RdmaNic*> hosts;
  for (const auto& per_tor : t.hosts_by_tor) {
    hosts.insert(hosts.end(), per_tor.begin(), per_tor.end());
  }
  return hosts;
}

TEST(Workload, UserPairsMakeClosedLoopProgress) {
  Network net(1);
  auto topo = BuildClos(net, 5, TopologyOptions{});
  BenchmarkTrafficOptions opt;
  opt.num_pairs = 10;
  opt.incast_degree = 0;
  opt.size_scale = 0.05;
  BenchmarkTraffic traffic(net, AllHosts(topo), opt);
  traffic.Begin();
  net.RunFor(Milliseconds(10));
  EXPECT_GT(traffic.user_transfers(), 50);
  EXPECT_GT(traffic.user_goodput().size(), 50u);
  // Goodputs are positive and below line rate.
  EXPECT_GT(traffic.user_goodput().Quantile(0.5), 0.0);
  EXPECT_LE(traffic.user_goodput().Quantile(1.0), 40.0);
}

TEST(Workload, IncastStreamsRepeat) {
  Network net(2);
  auto topo = BuildClos(net, 5, TopologyOptions{});
  BenchmarkTrafficOptions opt;
  opt.num_pairs = 0;
  opt.incast_degree = 4;
  opt.incast_flow_bytes = 100 * kKB;
  BenchmarkTraffic traffic(net, AllHosts(topo), opt);
  traffic.Begin();
  net.RunFor(Milliseconds(10));
  // Each of the 4 sources streams chunks continuously: many transfers.
  EXPECT_GT(traffic.incast_transfers(), 16);
  EXPECT_EQ(traffic.incast_goodput().size(),
            static_cast<size_t>(traffic.incast_transfers()));
}

TEST(Workload, IncastSharesBottleneckAcrossSenders) {
  Network net(3);
  auto topo = BuildClos(net, 5, TopologyOptions{});
  BenchmarkTrafficOptions opt;
  opt.num_pairs = 0;
  opt.incast_degree = 5;
  opt.incast_flow_bytes = 250 * kKB;
  opt.mode = TransportMode::kRdmaDcqcn;
  BenchmarkTraffic traffic(net, AllHosts(topo), opt);
  traffic.Begin();
  net.RunFor(Milliseconds(20));
  // Ideal per-flow is 8 Gbps (40/5); nobody can exceed it by much for a
  // full round, and the median should be within a factor ~3 of ideal.
  EXPECT_LT(traffic.incast_goodput().Quantile(0.5), 20.0);
  EXPECT_GT(traffic.incast_goodput().Quantile(0.5), 2.0);
}

TEST(Workload, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Network net(7);
    auto topo = BuildClos(net, 5, TopologyOptions{});
    BenchmarkTrafficOptions opt;
    opt.num_pairs = 5;
    opt.incast_degree = 3;
    opt.size_scale = 0.05;
    opt.seed = 42;
    BenchmarkTraffic traffic(net, AllHosts(topo), opt);
    traffic.Begin();
    net.RunFor(Milliseconds(5));
    return std::make_pair(traffic.user_transfers(),
                          traffic.incast_transfers());
  };
  EXPECT_EQ(run(), run());
}

TEST(Monitor, FlowRateMonitorMeasuresGoodput) {
  Network net(1);
  auto topo = BuildStar(net, 2, TopologyOptions{});
  FlowSpec f;
  f.flow_id = 0;
  f.src_host = topo.hosts[0]->id();
  f.dst_host = topo.hosts[1]->id();
  f.size_bytes = 0;  // greedy
  f.mode = TransportMode::kRdmaRaw;
  net.StartFlow(f);
  FlowRateMonitor mon(&net.eq(), Milliseconds(1));
  mon.Track("f0", [&] { return topo.hosts[1]->ReceiverDeliveredBytes(0); });
  mon.Start();
  net.RunFor(Milliseconds(10));
  // Steady line-rate flow: every 1 ms window shows ~40 Gbps.
  EXPECT_NEAR(mon.MeanGbps(0, Milliseconds(2), Milliseconds(10)), 40.0, 1.0);
}

TEST(Monitor, QueueMonitorBuildsCdf) {
  Network net(5);
  auto topo = BuildStar(net, 5, TopologyOptions{});
  for (int i = 0; i < 4; ++i) {
    FlowSpec f;
    f.flow_id = i;
    f.src_host = topo.hosts[static_cast<size_t>(i)]->id();
    f.dst_host = topo.hosts[4]->id();
    f.size_bytes = 0;
    f.mode = TransportMode::kRdmaDcqcn;
    net.StartFlow(f);
  }
  QueueMonitor mon(&net.eq(), Microseconds(10), [&] {
    return topo.sw->EgressQueueBytes(4, kDataPriority);
  });
  mon.Start();
  net.RunFor(Milliseconds(20));
  Cdf cdf = mon.ToCdf(Milliseconds(5));
  ASSERT_GT(cdf.size(), 100u);
  // DCQCN keeps the queue bounded well below the DCTCP-style level.
  EXPECT_LT(cdf.Quantile(0.9), 300e3);
  EXPECT_GT(cdf.Quantile(0.9), 0.0);
}

}  // namespace
}  // namespace dcqcn
