// Parameterized property tests for the fluid model: fixed-point
// consistency across flow counts, integrator robustness (step-size
// convergence, delay handling), and conservation-style invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "fluid/fluid_model.h"
#include "fluid/sweep.h"

namespace dcqcn {
namespace {

FluidParams Deployment(int n) {
  return FluidParams::FromDcqcn(DcqcnParams::Deployment(), Gbps(40), n);
}

// ---- fixed point properties across N ----

class FixedPointAcrossN : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointAcrossN, SolutionExistsAndIsInterior) {
  const FluidFixedPoint fp = SolveFixedPoint(Deployment(GetParam()));
  EXPECT_GT(fp.p, 0.0);
  EXPECT_LT(fp.p, 0.5);
  EXPECT_GT(fp.alpha, 0.0);
  EXPECT_LE(fp.alpha, 1.0);
  EXPECT_GT(fp.queue_bytes, 5e3);  // above Kmin
  EXPECT_LE(fp.queue_bytes, 200e3 + 1);
}

TEST_P(FixedPointAcrossN, TargetRateAboveFairShare) {
  // R_T sits above R_C at the fixed point (it is where fast recovery aims).
  const int n = GetParam();
  const FluidParams p = Deployment(n);
  const FluidFixedPoint fp = SolveFixedPoint(p);
  EXPECT_GE(fp.rt_pps, p.capacity_pps / n);
}

TEST_P(FixedPointAcrossN, SimulationConvergesToFixedPointQueue) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP() << "one flow at line rate never builds queue";
  if (n > 8) GTEST_SKIP() << "above Pmax: limit cycle, not a fixed point";
  const FluidParams p = Deployment(n);
  const FluidFixedPoint fp = SolveFixedPoint(p);
  FluidModel m(p);
  for (int i = 0; i < n; ++i) m.StartFlow(i);
  m.RunUntil(0.3);
  EXPECT_NEAR(m.queue_bytes(), fp.queue_bytes, fp.queue_bytes * 0.8);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(m.flow(i).rc, p.capacity_pps / n, p.capacity_pps / n * 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Flows, FixedPointAcrossN,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

// ---- integrator robustness ----

TEST(FluidIntegrator, HalvingDtChangesLittle) {
  const FluidParams p = Deployment(2);
  auto solve = [&](double dt) {
    FluidModel m(p, dt);
    m.StartFlow(0);
    m.StartFlow(1, p.line_rate_pps / 8);
    m.RunUntil(0.05);
    return m.FlowRateGbps(0) + m.FlowRateGbps(1);
  };
  const double coarse = solve(1e-6);
  const double fine = solve(2.5e-7);
  EXPECT_NEAR(coarse, fine, std::max(2.0, 0.1 * fine));
}

TEST(FluidIntegrator, HistoryDelayIsRespected) {
  // Queue changes cannot affect rates sooner than tau*: start one flow at
  // 2x capacity; its rate must stay untouched for at least tau* seconds
  // (no marking feedback has arrived yet).
  FluidParams p = Deployment(1);
  FluidModel m(p);
  m.StartFlow(0, p.capacity_pps);  // exactly capacity: queue stays ~0
  m.RunUntil(p.tau_star * 0.9);
  EXPECT_NEAR(m.flow(0).rc, p.capacity_pps, p.capacity_pps * 1e-6);
}

TEST(FluidIntegrator, InactiveFlowsContributeNothing) {
  FluidParams p = Deployment(4);
  FluidModel m(p);
  m.StartFlow(0);
  m.RunUntil(0.01);
  EXPECT_DOUBLE_EQ(m.TotalRatePps(), m.flow(0).rc);
  EXPECT_FALSE(m.flow(3).active);
}

TEST(FluidIntegrator, LateStartersGetFairShareEventually) {
  FluidParams p = Deployment(4);
  FluidModel m(p);
  m.StartFlow(0);
  m.StartFlowAt(1, 0.02);
  m.StartFlowAt(2, 0.04);
  m.StartFlowAt(3, 0.06);
  m.RunUntil(0.35);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(m.FlowRateGbps(i), 10.0, 3.5) << "flow " << i;
  }
}

// ---- convergence metric sanity across parameter variants ----

struct SweepCase {
  double timer_us;
  double byte_counter_kb;
  bool expect_convergence;
};

class ConvergenceCases : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConvergenceCases, MatchesFig11Regions) {
  const SweepCase c = GetParam();
  FluidParams p = FluidParams::FromDcqcn(DcqcnParams::Strawman(), Gbps(40), 2);
  p.timer_seconds = c.timer_us * 1e-6;
  p.byte_counter_packets = c.byte_counter_kb * 1000 / kMtu;
  const ConvergenceResult r = TwoFlowConvergence(p);
  if (c.expect_convergence) {
    EXPECT_LT(r.mean_abs_diff_gbps, 6.0);
  } else {
    EXPECT_GT(r.mean_abs_diff_gbps, 12.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig11, ConvergenceCases,
    ::testing::Values(SweepCase{1500, 150, false},    // strawman
                      SweepCase{55, 10000, true},     // deployed timer
                      SweepCase{55, 150, true},       // fast timer alone
                      SweepCase{1500, 10000, false},  // slow timer, big B
                      SweepCase{150, 10000, true}));

TEST(ConvergenceMetric, SeriesCoversMeasurementWindow) {
  const ConvergenceResult r = TwoFlowConvergence(Deployment(2), 0.05, 0.025);
  EXPECT_GT(r.diff_series.points.size(), 40u);
  EXPECT_GE(r.mean_abs_diff_gbps, 0.0);
  EXPECT_GE(r.mean_queue_bytes, 0.0);
}

}  // namespace
}  // namespace dcqcn
