// Randomized fault-plan fuzzing: generate arbitrary bounded fault schedules
// (flaps, loss, corruption, pause storms, slow receivers, buffer shrinks)
// against a live star fabric with real flows and assert the two properties
// that make fault injection trustworthy:
//   * buffer-accounting invariants hold at every probe point, faults or not
//   * once every fault has healed, every flow completes and the fabric
//     drains back to a clean state (no stuck PAUSE, no leaked occupancy)
#include <gtest/gtest.h>

#include "cc/cc_policy.h"
#include "fault/fault_injector.h"
#include "net/topology.h"

namespace dcqcn {
namespace {

constexpr int kHosts = 4;

FaultPlan RandomBoundedPlan(Rng& rng, const StarTopology& topo) {
  FaultPlan plan;
  const int n = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < n; ++i) {
    const Time at = rng.UniformInt(0, 5) * kMillisecond;
    const Time dur = rng.UniformInt(1, 30) * 100 * kMicrosecond;
    const int host_idx = static_cast<int>(rng.UniformInt(0, kHosts - 1));
    const int host_id = topo.hosts[static_cast<size_t>(host_idx)]->id();
    switch (rng.UniformInt(0, 5)) {
      case 0:
        plan.Add(LinkFlap(topo.sw->id(), host_id, at, dur));
        break;
      case 1:
        // Loss stays small: go-back-0 restarts the whole message per loss,
        // so heavy loss windows only test patience, not correctness.
        plan.Add(PacketLoss(topo.sw->id(), host_id, at, dur,
                            0.001 * static_cast<double>(
                                        rng.UniformInt(1, 50))));
        break;
      case 2:
        plan.Add(Corruption(topo.sw->id(), host_id, at, dur,
                            0.001 * static_cast<double>(
                                        rng.UniformInt(1, 50))));
        break;
      case 3:
        plan.Add(PauseStorm(host_id, kDataPriority, at, dur));
        break;
      case 4:
        plan.Add(SlowReceiver(host_id, at, dur,
                              rng.UniformInt(10, 300) * kMicrosecond));
        break;
      default:
        plan.Add(BufferShrink(topo.sw->id(), at, dur,
                              rng.UniformInt(100, 1000) * kKB));
        break;
    }
  }
  plan.Validate();
  return plan;
}

class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, RandomPlansNeverBreakInvariantsAndFlowsFinish) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Network net(seed);
  // Faulty links can eat RESUME frames, so the guaranteed-recovery property
  // needs the real 802.1Qbb pause-quanta semantics: received PAUSE expires
  // unless refreshed, senders refresh while the condition holds.
  TopologyOptions opt;
  opt.switch_config.pfc_pause_expiry = Microseconds(840);
  opt.switch_config.pfc_pause_refresh = Microseconds(200);
  opt.nic_config.pfc_pause_expiry = Microseconds(840);
  StarTopology topo = BuildStar(net, kHosts, opt);
  Rng fuzz(seed * 0x9e3779b97f4a7c15ULL + 1);

  // A few bounded flows between random distinct host pairs, each under a
  // random registered CcPolicy: the recovery guarantee must be
  // policy-agnostic, and mixed policies sharing a fabric must not wedge
  // each other's fault handling.
  const std::vector<std::string> policies = CcPolicyNames();
  const int num_flows = static_cast<int>(fuzz.UniformInt(2, 4));
  int started = 0;
  for (int i = 0; i < num_flows; ++i) {
    const int a = static_cast<int>(fuzz.UniformInt(0, kHosts - 1));
    int b = static_cast<int>(fuzz.UniformInt(0, kHosts - 1));
    if (a == b) b = (b + 1) % kHosts;
    const int16_t policy = CcPolicyIdByName(policies[static_cast<size_t>(
        fuzz.UniformInt(0, static_cast<int64_t>(policies.size()) - 1))]);
    FlowSpec f;
    f.flow_id = net.NextFlowId();
    f.src_host = topo.hosts[static_cast<size_t>(a)]->id();
    f.dst_host = topo.hosts[static_cast<size_t>(b)]->id();
    f.size_bytes = fuzz.UniformInt(50, 300) * kKB;
    f.mode = CcPolicyInfoById(policy).mode;
    f.cc_policy = policy;
    net.StartFlow(f);
    ++started;
  }

  const FaultPlan plan = RandomBoundedPlan(fuzz, topo);
  ASSERT_TRUE(plan.AllBounded());
  FaultInjector inj(&net, plan, seed + 42);
  inj.Arm();

  // Interleave running with invariant probes while faults are live.
  const Time horizon = plan.LastHealTime() + Milliseconds(1);
  while (net.eq().Now() < horizon) {
    net.RunFor(Microseconds(fuzz.UniformInt(50, 500)));
    EXPECT_GE(topo.sw->shared_occupancy(), 0);
    EXPECT_LE(topo.sw->shared_occupancy(),
              topo.sw->config().buffer.total_buffer);
  }
  EXPECT_EQ(inj.faults_started(), static_cast<int64_t>(plan.faults.size()));
  EXPECT_EQ(inj.faults_healed(), static_cast<int64_t>(plan.faults.size()));

  // All faults healed: every flow must complete. 10 ms RTOs with go-back-0
  // restarts can stack up, so give a generous (but bounded) grace period.
  net.RunFor(Milliseconds(500));
  int completed = 0;
  for (const auto& h : net.hosts()) {
    for (const FlowRecord& rec : h->completed_flows()) {
      EXPECT_EQ(rec.bytes, rec.spec.size_bytes);
      ++completed;
    }
  }
  EXPECT_EQ(completed, started) << "flows stuck after all faults healed";

  // The fabric drained clean: no leaked buffer, no stuck pause state.
  EXPECT_EQ(topo.sw->shared_occupancy(), 0);
  for (int port = 0; port < topo.sw->num_ports(); ++port) {
    for (int pr = 0; pr < kNumPriorities; ++pr) {
      EXPECT_EQ(topo.sw->EgressQueueBytes(port, pr), 0);
      EXPECT_EQ(topo.sw->IngressQueueBytes(port, pr), 0);
      EXPECT_FALSE(topo.sw->TxPaused(port, pr))
          << "port " << port << " pr " << pr << " still paused";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace dcqcn
