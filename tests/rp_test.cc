// RP state machine tests (Fig. 7, Eq. 1-4).
#include "core/rp.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace dcqcn {
namespace {

constexpr Rate kLine = Gbps(40);

DcqcnParams Params() { return DcqcnParams::Deployment(); }

TEST(Rp, StartsAtLineRateUnlimited) {
  RpState rp(Params(), kLine);
  EXPECT_FALSE(rp.limiting());
  EXPECT_DOUBLE_EQ(rp.current_rate(), kLine);
  EXPECT_DOUBLE_EQ(rp.alpha(), 1.0);
}

TEST(Rp, FirstCnpHalvesRate) {
  // Eq. 1 with initial alpha = 1: R_C = R_C * (1 - 1/2).
  RpState rp(Params(), kLine);
  rp.OnCnp();
  EXPECT_TRUE(rp.limiting());
  EXPECT_DOUBLE_EQ(rp.current_rate(), kLine / 2.0);
  EXPECT_DOUBLE_EQ(rp.target_rate(), kLine);
}

TEST(Rp, CnpUpdatesAlphaTowardOne) {
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();
  // alpha = (1-g)*1 + g = 1 still.
  EXPECT_DOUBLE_EQ(rp.alpha(), 1.0);
  // Decay then cut again: alpha moves toward 1.
  rp.OnAlphaTimer();
  const double decayed = (1.0 - p.g);
  EXPECT_DOUBLE_EQ(rp.alpha(), decayed);
  rp.OnCnp();
  EXPECT_DOUBLE_EQ(rp.alpha(), (1.0 - p.g) * decayed + p.g);
}

TEST(Rp, AlphaTimerDecaysAlpha) {
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();
  for (int i = 0; i < 10; ++i) rp.OnAlphaTimer();
  EXPECT_NEAR(rp.alpha(), std::pow(1.0 - p.g, 10), 1e-12);
}

TEST(Rp, AlphaTimerNoEffectWhenNotLimiting) {
  RpState rp(Params(), kLine);
  rp.OnAlphaTimer();
  EXPECT_DOUBLE_EQ(rp.alpha(), 1.0);
}

TEST(Rp, SmallerAlphaMeansGentlerCut) {
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();  // rate = 20G
  for (int i = 0; i < 200; ++i) rp.OnAlphaTimer();  // alpha ~ 0.46
  const Rate before = rp.current_rate();
  const double alpha = rp.alpha();
  rp.OnCnp();
  EXPECT_NEAR(rp.current_rate(), before * (1.0 - alpha / 2.0),
              before * 1e-9);
  EXPECT_GT(rp.current_rate(), before / 2.0);
}

TEST(Rp, FastRecoveryHalvesGapToTarget) {
  // Eq. 3: each of the first F-1 iterations halves (R_T - R_C).
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();  // R_C = 20G, R_T = 40G
  double expected = ToGbps(kLine) / 2.0;
  for (int i = 1; i < p.fast_recovery_steps; ++i) {
    rp.OnRateTimer();
    expected = (expected + 40.0) / 2.0;
    EXPECT_NEAR(ToGbps(rp.current_rate()), expected, 1e-9);
    EXPECT_NEAR(ToGbps(rp.target_rate()), 40.0, 1e-9);  // target fixed in FR
  }
}

TEST(Rp, AdditiveIncreaseRaisesTargetByRai) {
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();
  // Finish fast recovery via timer events (T reaches F).
  for (int i = 0; i < p.fast_recovery_steps; ++i) rp.OnRateTimer();
  // Next event: max(T,BC) = F+1 > F but min(T,BC) = 0 < F -> additive.
  const Rate rt_before = rp.target_rate();
  rp.OnRateTimer();
  EXPECT_NEAR(rp.target_rate(), std::min(kLine, rt_before + p.rate_ai), 1.0);
}

TEST(Rp, ByteCounterTriggersEveryBBytes) {
  auto p = Params();
  p.byte_counter = 10 * 1000;  // small B for the test
  RpState rp(p, kLine);
  rp.OnCnp();
  EXPECT_EQ(rp.OnBytesSent(9 * 1000), 0);
  EXPECT_EQ(rp.byte_counter_count(), 0);
  EXPECT_EQ(rp.OnBytesSent(1000), 1);
  EXPECT_EQ(rp.byte_counter_count(), 1);
  // A huge send can span several windows.
  EXPECT_EQ(rp.OnBytesSent(35 * 1000), 3);
}

TEST(Rp, HyperIncreaseWhenBothClocksPastF) {
  auto p = Params();
  p.byte_counter = 1000;  // every packet expires the byte counter
  RpState rp(p, Gbps(400000));  // huge line rate so it never releases
  // Several cuts pull R_T well below the line-rate cap so the HAI bump on
  // R_T is observable.
  rp.OnCnp();
  rp.OnCnp();
  rp.OnCnp();
  // Drive both T and BC beyond F.
  for (int i = 0; i <= p.fast_recovery_steps; ++i) {
    rp.OnRateTimer();
    rp.OnBytesSent(1000);
  }
  const Rate rt_before = rp.target_rate();
  rp.OnRateTimer();  // min(T,BC) > F -> hyper increase
  EXPECT_NEAR(rp.target_rate() - rt_before, p.rate_hai, 1.0);
}

TEST(Rp, CnpResetsCounters) {
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();
  for (int i = 0; i < 3; ++i) rp.OnRateTimer();
  EXPECT_EQ(rp.timer_count(), 3);
  rp.OnCnp();
  EXPECT_EQ(rp.timer_count(), 0);
  EXPECT_EQ(rp.byte_counter_count(), 0);
}

TEST(Rp, RecoveryReleasesLimiterAtLineRate) {
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();
  // Repeated timer increases must eventually recover to line rate and
  // release the limiter (QCN semantics; "hyper-fast start" next time).
  int iters = 0;
  while (rp.limiting() && iters < 100000) {
    rp.OnRateTimer();
    ++iters;
  }
  EXPECT_FALSE(rp.limiting());
  EXPECT_DOUBLE_EQ(rp.current_rate(), kLine);
  EXPECT_DOUBLE_EQ(rp.alpha(), 1.0);  // episode state discarded
  EXPECT_LT(iters, 100000);
}

TEST(Rp, RateNeverExceedsLineRate) {
  auto p = Params();
  RpState rp(p, kLine);
  rp.OnCnp();
  for (int i = 0; i < 10000 && rp.limiting(); ++i) {
    rp.OnRateTimer();
    rp.OnBytesSent(kMtu);
    EXPECT_LE(rp.current_rate(), kLine * (1 + 1e-12));
    EXPECT_LE(rp.target_rate(), kLine * (1 + 1e-12));
  }
}

TEST(Rp, RateNeverBelowMinRate) {
  auto p = Params();
  RpState rp(p, kLine);
  for (int i = 0; i < 1000; ++i) {
    rp.OnCnp();
    EXPECT_GE(rp.current_rate(), p.min_rate);
  }
}

TEST(Rp, RepeatedCnpsConvergeTowardMin) {
  // Sustained congestion: alpha stays ~1, rate decays geometrically.
  auto p = Params();
  RpState rp(p, kLine);
  for (int i = 0; i < 50; ++i) rp.OnCnp();
  EXPECT_LT(rp.current_rate(), Mbps(100));
}

TEST(Rp, ByteCounterIgnoredWhenNotLimiting) {
  RpState rp(Params(), kLine);
  EXPECT_EQ(rp.OnBytesSent(100 * 1000 * 1000), 0);
  EXPECT_FALSE(rp.limiting());
}

}  // namespace
}  // namespace dcqcn
