// Open-loop Poisson arrival driver tests.
#include "workload/poisson.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/topology.h"
#include "workload/pairs.h"

namespace dcqcn {
namespace {

std::vector<RdmaNic*> AllHosts(const ClosTopology& t) {
  std::vector<RdmaNic*> hosts;
  for (const auto& per_tor : t.hosts_by_tor) {
    hosts.insert(hosts.end(), per_tor.begin(), per_tor.end());
  }
  return hosts;
}

TEST(PoissonArrivals, RateMatchesOfferedLoad) {
  Network net(1);
  auto topo = BuildClos(net, 5, TopologyOptions{});
  PoissonArrivalOptions opt;
  opt.offered_load = Gbps(40);
  opt.size_scale = 0.1;  // small flows so many complete
  PoissonArrivals gen(net, AllHosts(topo), opt);
  gen.Begin();
  const Time dur = Milliseconds(20);
  net.RunFor(dur);
  // Expected arrivals = duration / mean gap; Poisson std is sqrt(n).
  const double expected =
      static_cast<double>(dur) / static_cast<double>(gen.mean_interarrival());
  EXPECT_NEAR(static_cast<double>(gen.started()), expected,
              4 * std::sqrt(expected) + 2);
}

TEST(PoissonArrivals, FlowsCompleteAtModerateLoad) {
  Network net(2);
  auto topo = BuildClos(net, 5, TopologyOptions{});
  PoissonArrivalOptions opt;
  opt.offered_load = Gbps(20);  // light for a 20-host fabric
  opt.size_scale = 0.1;
  PoissonArrivals gen(net, AllHosts(topo), opt);
  gen.Begin();
  net.RunFor(Milliseconds(30));
  EXPECT_GT(gen.completed(), 0);
  // At light load nearly everything started early has finished.
  EXPECT_GT(static_cast<double>(gen.completed()),
            0.7 * static_cast<double>(gen.started()));
  EXPECT_GT(gen.goodput().Quantile(0.5), 0.0);
  EXPECT_GT(gen.fct_us().Quantile(0.5), 0.0);
}

TEST(PoissonArrivals, HigherLoadMoreArrivals) {
  auto count = [](Rate load) {
    Network net(3);
    auto topo = BuildClos(net, 5, TopologyOptions{});
    PoissonArrivalOptions opt;
    opt.offered_load = load;
    opt.size_scale = 0.1;
    PoissonArrivals gen(net, AllHosts(topo), opt);
    gen.Begin();
    net.RunFor(Milliseconds(10));
    return gen.started();
  };
  EXPECT_GT(count(Gbps(80)), 2 * count(Gbps(20)));
}

TEST(PoissonArrivals, InFlightCapLimitsBacklog) {
  Network net(4);
  auto topo = BuildClos(net, 5, TopologyOptions{});
  PoissonArrivalOptions opt;
  opt.offered_load = Gbps(400);  // heavy overload
  opt.size_scale = 1.0;
  opt.max_in_flight = 10;
  PoissonArrivals gen(net, AllHosts(topo), opt);
  gen.Begin();
  net.RunFor(Milliseconds(10));
  EXPECT_GT(gen.skipped_in_flight_cap(), 0);
  EXPECT_LE(gen.started() - gen.completed(), 10);
}

TEST(PoissonArrivals, DeterministicWithSeed) {
  auto run = [] {
    Network net(5);
    auto topo = BuildClos(net, 5, TopologyOptions{});
    PoissonArrivalOptions opt;
    opt.offered_load = Gbps(40);
    opt.size_scale = 0.1;
    opt.seed = 99;
    PoissonArrivals gen(net, AllHosts(topo), opt);
    gen.Begin();
    net.RunFor(Milliseconds(10));
    return std::make_pair(gen.started(), gen.completed());
  };
  EXPECT_EQ(run(), run());
}

TEST(PoissonArrivals, CoexistsWithBenchmarkTraffic) {
  // Poisson background + the §6.2 closed-loop benchmark on the same hosts:
  // the completion dispatchers must not steal each other's flows.
  Network net(6);
  auto topo = BuildClos(net, 5, TopologyOptions{});
  auto hosts = AllHosts(topo);
  BenchmarkTrafficOptions bopt;
  bopt.num_pairs = 4;
  bopt.incast_degree = 0;
  bopt.size_scale = 0.1;
  BenchmarkTraffic bench(net, hosts, bopt);
  PoissonArrivalOptions popt;
  popt.offered_load = Gbps(10);
  popt.size_scale = 0.1;
  PoissonArrivals gen(net, hosts, popt);
  bench.Begin();
  gen.Begin();
  net.RunFor(Milliseconds(20));
  EXPECT_GT(bench.user_transfers(), 0);
  EXPECT_GT(gen.completed(), 0);
}

}  // namespace
}  // namespace dcqcn
